//! Reactor perf A/Bs, recorded in `BENCH_reactor.json`:
//!
//! * **Syscall batching** — lookups/sec for the batched
//!   (`sendmmsg`/`recvmmsg`, `--batch-size 32`) reactor versus
//!   per-datagram syscalls (`--batch-size 1`) on a zero-latency loopback
//!   workload with a 1000-lookup admission window — the configuration
//!   where syscall cost, not network latency, is the binding constraint.
//! * **Codec** — owned `Message::decode` versus the borrowed
//!   `MessageView` sweep on a referral corpus.
//! * **Scan pipeline** — the shared-queue credit pool versus the static
//!   per-worker split, through the full `run_scan_pipeline`
//!   orchestration: once on a uniform all-healthy fleet (the
//!   no-regression case), once with most destinations serving backoff
//!   penalties (where parking + stealing should win big), and once with
//!   a durable checkpoint attached (manifest + rolling snapshots — what
//!   `--checkpoint` costs the hot path).
//! * **I/O backends** — the io_uring ring (`--io-backend uring`) versus
//!   the mmsg arena on the same 1000-in-flight loopback workload,
//!   recording ring submission counters (SQEs/enter, enters/lookup, CQE
//!   batches, SQ-full stalls) alongside throughput. Skipped — recorded
//!   as `available: false` — on kernels without io_uring.
//! * **Serve mode** — a `zdns_framework::serve` fleet on loopback,
//!   answering the same scanning reactor out of a warmed cache, versus
//!   the scan path's direct lookups/sec. The serve figure is the
//!   bidirectional engine's whole answer path per query: arena recv,
//!   borrowed view parse, per-client gate, cache probe, scratch
//!   re-encode, send.
//! * **Packet cache** — the serve hot path's memoized-answer A/B
//!   (PR-10 tentpole): identical hot-key query streams driven straight
//!   through `ServerRole::handle_datagram` against a role with
//!   `--packet-cache-capacity 0` (record-path reference: shard lock,
//!   RRset walk, scratch re-encode per hit) and a role with the packet
//!   cache on (memcpy + ID/flags patch + cookie splice). Measured
//!   in-process because the loopback e2e round trip is client-dominated;
//!   an e2e hot-key fleet pair is recorded alongside as informational.
//! * **Paced scaling** — paced pipeline throughput at 1, 2, and 4
//!   workers, lock-free `ConcurrentPacer` (the default) versus the
//!   mutex-guarded `--pacer legacy-shared`, on a never-deferring global
//!   budget where every send pays the pacer's admission cost. The
//!   4-worker pair is where the legacy mutex serializes the send hot
//!   path and block leasing should pull ahead.
//!
//! Gates (exit non-zero below the bar): `--min-speedup X` on the batched
//! ratio, `--min-view-speedup X` on the codec ratio,
//! `--min-uniform-ratio X` on shared/static for the uniform pipeline
//! case, `--min-uring-ratio X` on uring/mmsg (auto-pass when the
//! kernel has no io_uring — the fallback path is the product behaviour
//! there, not a regression), `--min-serve-ratio X` on serve/scan
//! throughput, `--min-checkpoint-ratio X` on the checkpointed
//! pipeline's throughput relative to the plain pipeline,
//! `--min-paced-ratio X` on the 4-worker concurrent-over-legacy pacer
//! ratio (auto-pass on single-core machines, where cross-worker mutex
//! contention — the thing the concurrent pacer removes — cannot occur),
//! and `--min-packet-ratio X` on the packet-hit-over-record-hit direct
//! serve ratio (best per-pair over alternating rounds).
//!
//! Run: `cargo run --release -p zdns-bench --bin bench_reactor -- [--quick]
//! [--out PATH] [--min-speedup X] [--min-view-speedup X]
//! [--min-uniform-ratio X] [--min-uring-ratio X] [--min-serve-ratio X]
//! [--min-checkpoint-ratio X] [--min-paced-ratio X] [--min-packet-ratio X]`

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use zdns_bench::quick_mode;
use zdns_core::alloc_count::{thread_allocations, CountingAllocator};
use zdns_core::{
    AddrMap, Admission, Driver, DriverReport, IoBackend, Reactor, ReactorConfig, Resolver,
    ResolverConfig,
};
use zdns_netsim::{SimClient, WireServer, SECONDS};
use zdns_wire::{Message, MessageView, Name, Question, RData, Record, RecordType};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

// Count every heap allocation (per thread) so the artifact records
// allocations/lookup alongside lookups/sec.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The admission window the acceptance criterion names.
const IN_FLIGHT: usize = 1_000;
/// Batch depth for the batched configuration (the reactor default).
const BATCH: usize = 32;

/// `n` A records behind `servers` zero-latency loopback wire servers;
/// external-mode lookups hash across the servers, spreading server-side
/// work over several OS threads so the measured bottleneck is the
/// client's syscall layer.
fn loopback_fleet(
    n: usize,
    servers: usize,
) -> (Vec<WireServer>, Resolver, Arc<AddrMap>, Vec<Question>) {
    let server_ips: Vec<Ipv4Addr> = (0..servers)
        .map(|i| Ipv4Addr::new(203, 0, 113, 50 + i as u8))
        .collect();
    let mut fleet = Vec::new();
    let mut mapping = Vec::new();
    for ip in &server_ips {
        let mut zone = Zone::new(
            "bench.test".parse().unwrap(),
            "ns1.bench.test".parse().unwrap(),
            300,
        );
        for i in 0..n {
            zone.add(Record::new(
                format!("b{i}.bench.test").parse().unwrap(),
                300,
                RData::A(Ipv4Addr::new(10, 9, (i / 256) as u8, (i % 256) as u8)),
            ));
        }
        let mut universe = ExplicitUniverse::new();
        universe.host(*ip, zone);
        let server = WireServer::start(Arc::new(universe) as Arc<dyn Universe>, *ip).unwrap();
        mapping.push((*ip, server.addr()));
        fleet.push(server);
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .expect("every query targets a bench server")
    });
    let mut config = ResolverConfig::external(server_ips);
    config.timeout = 2 * SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let questions = (0..n)
        .map(|i| {
            Question::new(
                format!("b{i}.bench.test").parse::<Name>().unwrap(),
                RecordType::A,
            )
        })
        .collect();
    (fleet, resolver, addr_map, questions)
}

/// One timed scan: lookups/sec, the driver report, and heap allocations
/// per lookup on this thread during the scan. Machines are pre-built so
/// the measured region is the reactor loop itself (admission, scratch
/// encode, batched syscalls, view decode, machine stepping) — the same
/// boundary the `zero_alloc` integration test enforces at exactly 0 on
/// the view path.
fn reactor_for(addr_map: &Arc<AddrMap>, batch_size: usize, io_backend: IoBackend) -> Reactor {
    Reactor::new(
        ReactorConfig {
            max_in_flight: IN_FLIGHT,
            source: Ipv4Addr::LOCALHOST,
            batch_size,
            io_backend,
            ..ReactorConfig::default()
        },
        Arc::clone(addr_map),
    )
    .unwrap()
}

fn run_once(
    reactor: &mut Reactor,
    resolver: &Resolver,
    questions: &[Question],
) -> (f64, DriverReport, f64) {
    let mut machines: Vec<Box<dyn SimClient>> = questions
        .iter()
        .rev()
        .map(|q| resolver.machine(q.clone(), None))
        .collect();
    let mut done = 0usize;
    let allocs_before = thread_allocations();
    let started = Instant::now();
    let report = {
        let mut feed = || match machines.pop() {
            Some(machine) => Admission::Admit(machine),
            None => Admission::Exhausted,
        };
        let mut on_done = |_| done += 1;
        reactor.run_scan(&mut feed, &mut on_done)
    };
    let elapsed = started.elapsed();
    let allocs = thread_allocations() - allocs_before;
    assert_eq!(done, questions.len(), "every lookup must complete");
    (
        questions.len() as f64 / elapsed.as_secs_f64(),
        report,
        allocs as f64 / questions.len() as f64,
    )
}

/// Best of `rounds` runs (loopback benches are noisy on shared runners).
/// The allocation figure reported is the *minimum* across rounds: later
/// rounds run on warmed allocator pools, which is the steady state the
/// zero-alloc claim is about.
fn best_of(
    rounds: usize,
    resolver: &Resolver,
    addr_map: &Arc<AddrMap>,
    questions: &[Question],
    batch_size: usize,
    io_backend: IoBackend,
) -> (f64, DriverReport, f64) {
    // One reactor for all rounds: the first round grows the pools, the
    // later rounds run the warmed steady state the allocation figure is
    // about.
    let mut reactor = reactor_for(addr_map, batch_size, io_backend);
    let mut best: Option<(f64, DriverReport)> = None;
    let mut min_allocs = f64::INFINITY;
    for _ in 0..rounds {
        let (rate, report, allocs) = run_once(&mut reactor, resolver, questions);
        min_allocs = min_allocs.min(allocs);
        if best.as_ref().map(|(r, _)| rate > *r).unwrap_or(true) {
            best = Some((rate, report));
        }
    }
    let (rate, report) = best.expect("rounds >= 1");
    (rate, report, min_allocs)
}

/// A referral-shaped response (13 NS + 13 glue A records), the wire shape
/// an iterative scan decodes most often.
fn sample_referral_bytes() -> Vec<u8> {
    let mut m = Message::query(
        0x1234,
        Question::new("www.example.com".parse().unwrap(), RecordType::A),
    );
    m.flags.response = true;
    for i in 0..13u8 {
        let ns: Name = format!("{}.gtld-servers.net", (b'a' + i) as char)
            .parse()
            .unwrap();
        m.authorities.push(Record::new(
            "com".parse().unwrap(),
            172_800,
            RData::Ns(ns.clone()),
        ));
        m.additionals.push(Record::new(
            ns,
            172_800,
            RData::A(Ipv4Addr::new(192, 5, 6, 30 + i)),
        ));
    }
    m.encode().unwrap()
}

/// Decode-path A/B on the referral corpus: owned `Message::decode` versus
/// the borrowed `MessageView` (parse + the same section scan a machine
/// performs). Returns (owned ns/decode, view ns/decode).
fn measure_codec() -> (f64, f64) {
    let bytes = sample_referral_bytes();
    let iters = 200_000u32;
    // Interleave a warmup round before each timed loop.
    for _ in 0..2_000 {
        let m = Message::decode(&bytes).unwrap();
        std::hint::black_box(m.answers.len());
        let v = MessageView::parse(&bytes).unwrap();
        std::hint::black_box(v.answer_count());
    }
    let started = Instant::now();
    for _ in 0..iters {
        let m = Message::decode(std::hint::black_box(&bytes)).unwrap();
        let mut ns = 0usize;
        for rec in &m.authorities {
            ns += usize::from(rec.rtype == RecordType::NS);
        }
        let mut addrs = 0usize;
        for rec in &m.additionals {
            addrs += usize::from(matches!(rec.rdata, RData::A(_)));
        }
        std::hint::black_box((m.rcode(), ns, addrs));
    }
    let owned_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let started = Instant::now();
    for _ in 0..iters {
        let view = MessageView::parse(std::hint::black_box(&bytes)).unwrap();
        let mut ns = 0usize;
        for rec in view.authorities() {
            ns += usize::from(rec.rtype == RecordType::NS);
        }
        let mut addrs = 0usize;
        for rec in view.additionals() {
            addrs += usize::from(rec.a_addr().is_some());
        }
        std::hint::black_box((view.rcode(), ns, addrs));
    }
    let view_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    (owned_ns, view_ns)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

// ---------------------------------------------------------------------------
// Scan-pipeline A/B: shared credit pool vs static split
// ---------------------------------------------------------------------------

/// One `run_scan_pipeline` pass over the PROBE workload described by
/// `inputs`, in shared or static admission mode, with `threads` workers
/// and either pacer flavour (`legacy_pacer` selects the mutex-guarded
/// `--pacer legacy-shared`). Returns lookups/sec and the merged driver
/// report.
#[allow(clippy::too_many_arguments)]
fn run_pipeline_case(
    static_split: bool,
    threads: usize,
    legacy_pacer: bool,
    window: usize,
    timeout_ms: u64,
    backoff_secs: Option<&str>,
    rate_pps: f64,
    checkpoint: Option<&std::path::Path>,
    addr_map: &Arc<AddrMap>,
    inputs: &[String],
) -> (f64, DriverReport) {
    use zdns_framework::{run_scan_pipeline, CallbackSink, Conf};
    let mut args = vec![
        "PROBE".to_string(),
        "--threads".into(),
        threads.to_string(),
        "--max-in-flight".into(),
        window.to_string(),
        "--retries".into(),
        "1".into(),
    ];
    if let Some(secs) = backoff_secs {
        args.extend(["--backoff-base".into(), secs.into()]);
        args.extend(["--backoff-cap".into(), secs.into()]);
    }
    if rate_pps > 0.0 {
        args.extend(["--rate-pps".into(), format!("{rate_pps}")]);
    }
    if static_split {
        args.push("--static-split".into());
    }
    if legacy_pacer {
        args.extend(["--pacer".into(), "legacy-shared".into()]);
    }
    if let Some(manifest) = checkpoint {
        // A durable pipeline: the keeper tracks every dispatch and
        // completion and snapshots on cadence. The input/output paths
        // only need to satisfy `--checkpoint`'s replayability checks —
        // the bench feeds its own source and sink.
        args.extend([
            "--real".into(),
            "--input-file".into(),
            "bench-names.txt".into(),
            "--output-file".into(),
            manifest
                .with_extension("jsonl")
                .to_string_lossy()
                .into_owned(),
            "--checkpoint".into(),
            manifest.to_string_lossy().into_owned(),
            "--checkpoint-every".into(),
            "1000".into(),
        ]);
    }
    let mut conf = Conf::parse(args).unwrap();
    conf.resolver.timeout = timeout_ms * zdns_netsim::MILLIS;
    let resolver = Resolver::new(conf.resolver.clone());
    let module = zdns_modules::ModuleRegistry::standard()
        .get("PROBE")
        .unwrap();
    let mut source = inputs.iter().cloned();
    let mut sink = CallbackSink::new(|_| {});
    let started = Instant::now();
    let report = run_scan_pipeline(
        &conf,
        &resolver,
        module,
        Arc::clone(addr_map),
        &mut source,
        &mut sink,
    );
    let rate = inputs.len() as f64 / started.elapsed().as_secs_f64();
    assert_eq!(
        report.lookups as usize,
        inputs.len(),
        "pipeline must complete every input: {:?}",
        report.worker_errors
    );
    (rate, report.driver)
}

/// Measure shared-queue vs static-split through the full pipeline:
/// `(uniform_shared, uniform_static, paced_shared, paced_static,
/// backoff_shared, backoff_static)` lookups/sec. The uniform case is
/// all-healthy with no pacing (credit-pool cost only); the paced case
/// adds a never-throttling global budget so every send pays the shared
/// pacer's mutex — the other half of the leasing design; the backoff
/// case sends 3 of every 4 lookups at blackholed destinations serving a
/// constant penalty, where parking + stealing recovers the stranded
/// window. The seventh figure re-runs the uniform shared case with a
/// durable checkpoint attached (keeper bookkeeping on every dispatch
/// and completion, a snapshot every 1000), measuring what durability
/// costs the hot path; the eighth is the checkpointed-over-plain ratio
/// measured pairwise (see below) for the overhead gate.
#[allow(clippy::type_complexity)]
fn measure_pipeline(quick: bool) -> (f64, f64, f64, f64, f64, f64, f64, f64) {
    use zdns_wire::Name;
    use zdns_zones::ExplicitUniverse;

    let healthy_ip = Ipv4Addr::new(203, 0, 113, 60);
    let zone = Zone::new(
        Name::root(),
        "ns1.bench-pipeline.test".parse().unwrap(),
        300,
    );
    let mut universe = ExplicitUniverse::new();
    universe.host(healthy_ip, zone);
    let healthy = WireServer::start(Arc::new(universe) as Arc<dyn Universe>, healthy_ip).unwrap();
    let healthy_addr = healthy.addr();

    let dead_ips: Vec<Ipv4Addr> = (0..5)
        .map(|i| Ipv4Addr::new(203, 0, 113, 200 + i as u8))
        .collect();
    let blackholes: Vec<std::net::UdpSocket> = dead_ips
        .iter()
        .map(|_| std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap())
        .collect();
    let mut mapping: Vec<(Ipv4Addr, std::net::SocketAddr)> = vec![(healthy_ip, healthy_addr)];
    for (sim, sock) in dead_ips.iter().zip(&blackholes) {
        mapping.push((*sim, sock.local_addr().unwrap()));
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .expect("bench probes only mapped destinations")
    });

    // Uniform: every destination healthy, no pacing — the shared pool's
    // bookkeeping must not cost throughput against the static split.
    let uniform_n = if quick { 3_000 } else { 10_000 };
    let uniform: Vec<String> = (0..uniform_n)
        .map(|i| format!("u{i}.bench-pipeline.test@{healthy_ip}"))
        .collect();
    let ckpt_dir = std::env::temp_dir().join(format!("zdns-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let manifest = ckpt_dir.join("bench.manifest.json");
    let uniform_static = (0..2)
        .map(|_| {
            run_pipeline_case(
                true, 2, false, 256, 2_000, None, 0.0, None, &addr_map, &uniform,
            )
            .0
        })
        .fold(0.0f64, f64::max);
    // Checkpointed (identical workload, durable manifest + rolling
    // snapshots attached) vs plain is measured as alternating
    // (plain, durable) pairs, and the overhead gate takes the best
    // per-pair ratio: each ~50ms loopback round individually wanders
    // ±10% with scheduler/thermal drift — far more than the few-percent
    // effect being measured — but drift within an adjacent pair
    // largely cancels.
    let mut uniform_shared = 0.0f64;
    let mut checkpoint_shared = 0.0f64;
    let mut checkpoint_ratio = 0.0f64;
    for _ in 0..3 {
        let plain = run_pipeline_case(
            false, 2, false, 256, 2_000, None, 0.0, None, &addr_map, &uniform,
        )
        .0;
        let durable = run_pipeline_case(
            false,
            2,
            false,
            256,
            2_000,
            None,
            0.0,
            Some(&manifest),
            &addr_map,
            &uniform,
        )
        .0;
        uniform_shared = uniform_shared.max(plain);
        checkpoint_shared = checkpoint_shared.max(durable);
        checkpoint_ratio = checkpoint_ratio.max(durable / plain);
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Paced uniform: a 10M pps budget never defers, but every send goes
    // through the pacer — per-worker buckets in static mode, the
    // scan-wide ConcurrentPacer (the product default) in shared mode.
    let (paced_static, _) = run_pipeline_case(
        true,
        2,
        false,
        256,
        2_000,
        None,
        10_000_000.0,
        None,
        &addr_map,
        &uniform,
    );
    let (paced_shared, _) = run_pipeline_case(
        false,
        2,
        false,
        256,
        2_000,
        None,
        10_000_000.0,
        None,
        &addr_map,
        &uniform,
    );

    // Partial backoff: 3/4 of lookups target blackholes behind a constant
    // 400ms penalty (80ms timeouts, one retry).
    let backoff_n = if quick { 120 } else { 240 };
    let mixed: Vec<String> = (0..backoff_n)
        .map(|i| {
            if i % 4 == 3 {
                format!("ok{i}.bench-pipeline.test@{healthy_ip}")
            } else {
                format!(
                    "dead{i}.bench-pipeline.test@{}",
                    dead_ips[i % dead_ips.len()]
                )
            }
        })
        .collect();
    let (backoff_static, _) = run_pipeline_case(
        true,
        2,
        false,
        24,
        80,
        Some("0.4"),
        0.0,
        None,
        &addr_map,
        &mixed,
    );
    let (backoff_shared, shared_driver) = run_pipeline_case(
        false,
        2,
        false,
        24,
        80,
        Some("0.4"),
        0.0,
        None,
        &addr_map,
        &mixed,
    );
    assert!(
        shared_driver.idle_credit_returns > 0,
        "the backoff case must exercise parking"
    );
    drop(healthy);
    (
        uniform_shared,
        uniform_static,
        paced_shared,
        paced_static,
        backoff_shared,
        backoff_static,
        checkpoint_shared,
        checkpoint_ratio,
    )
}

/// One row of the paced-scaling section: both pacer flavours at one
/// worker count, plus the best per-pair concurrent/legacy ratio.
struct PacedScaleRow {
    workers: usize,
    concurrent: f64,
    legacy: f64,
    ratio: f64,
}

/// Multi-worker paced scaling: the full pipeline on an all-healthy
/// fleet with a never-deferring 10M pps global budget, so every send
/// pays the scan-wide pacer's admission cost and nothing else differs —
/// lock-free `ConcurrentPacer` versus the mutex-guarded legacy
/// `SharedPacer` at 1, 2, and 4 workers. Four wire servers keep the
/// server side from binding a 4-worker run. Modes alternate in
/// (legacy, concurrent) pairs and each row reports the best per-pair
/// ratio, the same drift-cancelling measurement the checkpoint gate
/// uses. Returns the rows and the 4-worker concurrent driver report
/// (whose scan-wide `token_blocks_leased` / `pacer_cas_retries` /
/// `pacer_stripe_waits` telemetry proves which path ran).
fn measure_paced_scaling(quick: bool) -> (Vec<PacedScaleRow>, DriverReport) {
    let server_ips: Vec<Ipv4Addr> = (0..4)
        .map(|i| Ipv4Addr::new(203, 0, 113, 70 + i as u8))
        .collect();
    let mut servers = Vec::new();
    let mut mapping = Vec::new();
    for ip in &server_ips {
        let zone = Zone::new(Name::root(), "ns1.bench-paced.test".parse().unwrap(), 300);
        let mut universe = ExplicitUniverse::new();
        universe.host(*ip, zone);
        let server = WireServer::start(Arc::new(universe) as Arc<dyn Universe>, *ip).unwrap();
        mapping.push((*ip, server.addr()));
        servers.push(server);
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .expect("paced-scaling probes only mapped destinations")
    });
    let n = if quick { 3_000 } else { 8_000 };
    let inputs: Vec<String> = (0..n)
        .map(|i| format!("p{i}.bench-paced.test@{}", server_ips[i % server_ips.len()]))
        .collect();

    let mut rows = Vec::new();
    let mut gate_report = DriverReport::default();
    for workers in [1usize, 2, 4] {
        let pairs = if workers == 4 { 3 } else { 2 };
        let mut best = PacedScaleRow {
            workers,
            concurrent: 0.0,
            legacy: 0.0,
            ratio: 0.0,
        };
        for _ in 0..pairs {
            let (legacy, _) = run_pipeline_case(
                false,
                workers,
                true,
                256,
                2_000,
                None,
                10_000_000.0,
                None,
                &addr_map,
                &inputs,
            );
            let (concurrent, report) = run_pipeline_case(
                false,
                workers,
                false,
                256,
                2_000,
                None,
                10_000_000.0,
                None,
                &addr_map,
                &inputs,
            );
            best.legacy = best.legacy.max(legacy);
            best.concurrent = best.concurrent.max(concurrent);
            best.ratio = best.ratio.max(concurrent / legacy);
            if workers == 4 {
                gate_report = report;
            }
        }
        rows.push(best);
    }
    (rows, gate_report)
}

/// Serve-mode throughput: a one-shard `zdns_framework::serve` fleet on
/// loopback (forwarding to a `WireServer` upstream), answering the same
/// kind of scanning reactor the direct benches use. A warmup pass fills
/// the serve cache, so the measured rounds are the steady state the
/// acceptance criterion names: nearly every query answered in place from
/// the cache, no forwarding on the hot path. Returns (best lookups/sec,
/// cache-hit fraction, packet-hit fraction over the measured rounds).
fn measure_serve(
    lookups: usize,
    rounds: usize,
    distinct: usize,
    packet_capacity: usize,
) -> (f64, f64, f64) {
    use zdns_framework::serve::{start, ServeOptions};

    let mut zone = Zone::new(
        "serve-bench.test".parse().unwrap(),
        "ns1.serve-bench.test".parse().unwrap(),
        300,
    );
    for i in 0..distinct {
        zone.add(Record::new(
            format!("s{i}.serve-bench.test").parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(10, 11, (i / 256) as u8, (i % 256) as u8)),
        ));
    }
    let mut universe = ExplicitUniverse::new();
    universe.host(Ipv4Addr::LOCALHOST, zone);
    let upstream =
        WireServer::start(Arc::new(universe) as Arc<dyn Universe>, Ipv4Addr::LOCALHOST).unwrap();
    let handle = start(&ServeOptions {
        listen: (Ipv4Addr::LOCALHOST, 0).into(),
        upstreams: vec![upstream.addr()],
        cache_capacity: 100_000,
        packet_cache_capacity: packet_capacity,
        io_backend: IoBackend::Mmsg,
        ..ServeOptions::default()
    })
    .unwrap();
    let serve_addr = handle.local_addr();
    let addr_map: Arc<AddrMap> = Arc::new(move |_| serve_addr);
    let mut config = ResolverConfig::external(vec![Ipv4Addr::LOCALHOST]);
    config.timeout = 2 * SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let names: Vec<Question> = (0..distinct)
        .map(|i| {
            Question::new(
                format!("s{i}.serve-bench.test").parse::<Name>().unwrap(),
                RecordType::A,
            )
        })
        .collect();

    // Warmup: one pass over every distinct name forwards each miss
    // upstream once and fills the serve cache.
    let mut warm_reactor = reactor_for(&addr_map, BATCH, IoBackend::Mmsg);
    let _ = run_once(&mut warm_reactor, &resolver, &names);
    drop(warm_reactor);

    let questions: Vec<Question> = (0..lookups).map(|i| names[i % distinct].clone()).collect();
    let hits_before = handle.cache_hits();
    let packet_hits_before = handle.packet_hits();
    let queries_before = handle.queries();
    let mut reactor = reactor_for(&addr_map, BATCH, IoBackend::Mmsg);
    let mut best = 0.0f64;
    for _ in 0..rounds {
        let (rate, _, _) = run_once(&mut reactor, &resolver, &questions);
        best = best.max(rate);
    }
    let measured_queries = (handle.queries() - queries_before).max(1) as f64;
    let hit_fraction = (handle.cache_hits() - hits_before) as f64 / measured_queries;
    let packet_hit_fraction = (handle.packet_hits() - packet_hits_before) as f64 / measured_queries;
    (best, hit_fraction, packet_hit_fraction)
}

/// Direct serve hot-path A/B (the PR-10 tentpole): identical hot-key
/// query streams driven straight through `ServerRole::handle_datagram`
/// — no sockets, no client thread — once against a role with the packet
/// cache disabled (`packet_cache_capacity: 0`, the record-path
/// reference: shard lock + RRset walk + full scratch re-encode per hit)
/// and once with it on (memcpy + ID/flags patch + cookie splice).
/// Loopback e2e serve numbers are client-dominated, so this in-process
/// pair is where the memoized-packet win is measurable and gateable.
/// Returns (record qps, packet qps, best-of-pairs ratio, packet-side
/// allocs/query) — rates are each side's best round, the gated ratio is
/// the best *paired* ratio over alternating (record, packet) rounds.
fn measure_packet_cache(quick: bool) -> (f64, f64, f64, f64) {
    use zdns_core::{CacheKey, Clock, ServeConfig, ServerRole};
    use zdns_wire::{encode_query_into, Cookie, ScratchBuf};

    const HOT: usize = 16;
    let queries_per_round = if quick { 50_000 } else { 200_000 };
    let pairs = if quick { 2 } else { 3 };

    let build_role = |packet_capacity: usize| {
        let resolver = Resolver::new(ResolverConfig::external(vec![Ipv4Addr::new(192, 0, 2, 53)]));
        for i in 0..HOT {
            let name: Name = format!("h{i}.packet-bench.test").parse().unwrap();
            let records: Vec<Record> = (0..4)
                .map(|j| {
                    Record::new(
                        name.clone(),
                        3600,
                        RData::A(Ipv4Addr::new(10, 13, j, i as u8)),
                    )
                })
                .collect();
            resolver.core().cache.put(
                CacheKey {
                    name,
                    rtype: RecordType::A,
                },
                records,
                0,
            );
        }
        ServerRole::new(
            resolver,
            Clock::new(),
            ServeConfig {
                packet_cache_capacity: packet_capacity,
                ..ServeConfig::default()
            },
        )
    };
    let cookie = Cookie::client(*b"benchPKT");
    let queries: Vec<Vec<u8>> = (0..HOT)
        .map(|i| {
            let mut scratch = ScratchBuf::new();
            let q = Question::new(
                format!("h{i}.packet-bench.test").parse().unwrap(),
                RecordType::A,
            );
            encode_query_into(&mut scratch, i as u16, &q, true, Some(&cookie)).unwrap();
            scratch.take_bytes()
        })
        .collect();
    let peer: std::net::SocketAddr = (Ipv4Addr::LOCALHOST, 50_000).into();

    let mut record_role = build_role(0);
    let mut packet_role = build_role(zdns_core::DEFAULT_PACKET_CACHE_CAPACITY);
    let run = |role: &mut ServerRole, n: usize| -> f64 {
        let started = Instant::now();
        for i in 0..n {
            std::hint::black_box(role.handle_datagram(&queries[i % HOT], peer, 1));
        }
        n as f64 / started.elapsed().as_secs_f64()
    };
    // Warmup: memoizes the hot set on the packet side and grows both
    // scratch buffers to steady state.
    run(&mut record_role, HOT * 8);
    run(&mut packet_role, HOT * 8);

    let mut best_record = 0.0f64;
    let mut best_packet = 0.0f64;
    let mut best_ratio = 0.0f64;
    let mut packet_allocs = 0.0f64;
    for _ in 0..pairs {
        let record_qps = run(&mut record_role, queries_per_round);
        let before = thread_allocations();
        let packet_qps = run(&mut packet_role, queries_per_round);
        packet_allocs = (thread_allocations() - before) as f64 / queries_per_round as f64;
        best_record = best_record.max(record_qps);
        best_packet = best_packet.max(packet_qps);
        best_ratio = best_ratio.max(packet_qps / record_qps);
    }
    // Every measured packet-side query must actually ride the packet
    // path — a miss-y workload would gate the wrong code.
    let stats = packet_role.stats();
    assert!(
        stats.packet_hits() >= (pairs * queries_per_round) as u64,
        "packet-side rounds must be pure hits ({} hits)",
        stats.packet_hits()
    );
    (best_record, best_packet, best_ratio, packet_allocs)
}

/// Measure this kernel's raw per-datagram send cost through `BatchIo`
/// itself — per-datagram path vs batched path — so the artifact records
/// how expensive syscall *boundaries* are where the bench ran. On
/// mitigation-heavy kernels (KPTI etc.) the boundary runs 0.5–1.5µs and
/// batching pays off ~10×; on paravirt kernels with cheap entry it can
/// be tens of nanoseconds, bounding the achievable end-to-end speedup.
fn measure_syscall_costs() -> (f64, f64) {
    use zdns_core::BatchIo;
    let tx = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let rx = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let to = rx.local_addr().unwrap();
    tx.set_nonblocking(true).unwrap();
    let payload = vec![0u8; 40];
    let n = 32_000usize;
    let msgs: Vec<(&[u8], std::net::SocketAddr)> =
        (0..n).map(|_| (payload.as_slice(), to)).collect();
    let mut statuses = Vec::new();
    let mut time_path = |io: &mut BatchIo| {
        statuses.clear();
        let started = Instant::now();
        let stats = io.send_batch(&tx, &msgs, &mut statuses, &mut |_| {});
        started.elapsed().as_nanos() as f64 / stats.sent.max(1) as f64
    };
    let per_dg = time_path(&mut BatchIo::per_datagram(1));
    let batched = time_path(&mut BatchIo::new(BATCH));
    (per_dg, batched)
}

fn main() {
    let quick = quick_mode();
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_reactor.json".to_string());
    let min_speedup: Option<f64> = arg_value("--min-speedup").map(|v| v.parse().unwrap());
    let min_view_speedup: Option<f64> = arg_value("--min-view-speedup").map(|v| v.parse().unwrap());
    let min_uniform_ratio: Option<f64> =
        arg_value("--min-uniform-ratio").map(|v| v.parse().unwrap());
    let min_uring_ratio: Option<f64> = arg_value("--min-uring-ratio").map(|v| v.parse().unwrap());
    let min_serve_ratio: Option<f64> = arg_value("--min-serve-ratio").map(|v| v.parse().unwrap());
    let min_checkpoint_ratio: Option<f64> =
        arg_value("--min-checkpoint-ratio").map(|v| v.parse().unwrap());
    let min_paced_ratio: Option<f64> = arg_value("--min-paced-ratio").map(|v| v.parse().unwrap());
    let min_packet_ratio: Option<f64> = arg_value("--min-packet-ratio").map(|v| v.parse().unwrap());
    let lookups = if quick { 8_000 } else { 30_000 };
    let rounds = if quick { 2 } else { 3 };

    let (sendto_ns, sendmmsg_ns) = measure_syscall_costs();
    println!(
        "kernel syscall layer: {sendto_ns:.0} ns/dg per-datagram, {sendmmsg_ns:.0} ns/dg \
         batched ({:.0} ns boundary saved per datagram)",
        sendto_ns - sendmmsg_ns
    );
    let (owned_decode_ns, view_decode_ns) = measure_codec();
    let view_speedup = owned_decode_ns / view_decode_ns;
    println!(
        "codec (13-NS referral): owned decode {owned_decode_ns:.0} ns, borrowed view \
         {view_decode_ns:.0} ns ({view_speedup:.2}x)"
    );

    let (_fleet, resolver, addr_map, questions) = loopback_fleet(lookups, 4);

    // Warm up server threads, caches, and the page allocator before
    // either timed configuration runs.
    let warm: Vec<Question> = questions.iter().take(lookups / 4).cloned().collect();
    let mut warm_reactor = reactor_for(&addr_map, BATCH, IoBackend::Mmsg);
    let _ = run_once(&mut warm_reactor, &resolver, &warm);
    drop(warm_reactor);

    // The historic A/B stays pinned to explicit backends so the numbers
    // keep meaning the same thing now that `Auto` resolves to uring on
    // capable kernels.
    let (per_datagram_rate, per_datagram_report, per_datagram_allocs) = best_of(
        rounds,
        &resolver,
        &addr_map,
        &questions,
        1,
        IoBackend::Syscall,
    );
    let (batched_rate, batched_report, batched_allocs) = best_of(
        rounds,
        &resolver,
        &addr_map,
        &questions,
        BATCH,
        IoBackend::Mmsg,
    );
    let speedup = batched_rate / per_datagram_rate;

    // io_uring vs mmsg on the identical workload. Availability is what
    // the reactor actually resolved, not what we asked for — a kernel
    // without rings reports `mmsg` here and the section records that.
    let uring_available = reactor_for(&addr_map, BATCH, IoBackend::Uring).io_backend() == "uring";
    let uring_result = uring_available.then(|| {
        best_of(
            rounds,
            &resolver,
            &addr_map,
            &questions,
            BATCH,
            IoBackend::Uring,
        )
    });

    let batched_fill = batched_report.datagrams_sent as f64 / batched_report.send_syscalls as f64;
    println!(
        "reactor loopback bench: {lookups} lookups, {IN_FLIGHT} in-flight window, 4 servers \
         (peak in flight: {} per-datagram / {} batched)",
        per_datagram_report.peak_in_flight, batched_report.peak_in_flight
    );
    println!(
        "  per-datagram (batch 1):  {per_datagram_rate:>9.0} lookups/s  \
         ({} send syscalls, {per_datagram_allocs:.3} allocs/lookup)",
        per_datagram_report.send_syscalls
    );
    println!(
        "  batched     (batch {BATCH}): {batched_rate:>9.0} lookups/s  \
         ({} send syscalls, {batched_fill:.1} dg/syscall, fill {}, \
         {batched_allocs:.3} allocs/lookup)",
        batched_report.send_syscalls,
        batched_report.send_batch_fill.summary()
    );
    println!(
        "  speedup: {speedup:.2}x, ns/lookup: {:.0}",
        1e9 / batched_rate
    );

    let uring_ratio = match &uring_result {
        Some((uring_rate, uring_report, uring_allocs)) => {
            let sqes_per_enter =
                uring_report.ring_sqes as f64 / uring_report.ring_enters.max(1) as f64;
            let enters_per_lookup = uring_report.ring_enters as f64 / lookups as f64;
            println!(
                "  io_uring    (batch {BATCH}): {uring_rate:>9.0} lookups/s  \
                 ({} enters, {sqes_per_enter:.1} sqe/enter, {enters_per_lookup:.2} \
                 enters/lookup, {} cqe batches, {} sq-full stalls, \
                 {uring_allocs:.3} allocs/lookup)",
                uring_report.ring_enters, uring_report.cqe_batches, uring_report.sq_full_stalls
            );
            let ratio = uring_rate / batched_rate;
            println!("  uring/mmsg: {ratio:.2}x");
            Some(ratio)
        }
        None => {
            println!("  io_uring: unavailable on this kernel (auto degrades to mmsg)");
            None
        }
    };

    let (serve_rate, serve_hit_fraction, serve_packet_fraction) = measure_serve(
        lookups,
        rounds,
        2_000,
        zdns_core::DEFAULT_PACKET_CACHE_CAPACITY,
    );
    let serve_ratio = serve_rate / batched_rate;
    println!(
        "serve mode (1 shard, mmsg, warmed cache): {serve_rate:>9.0} queries/s \
         ({:.1}% cache hits, {:.1}% packet hits, {serve_ratio:.2}x of the scan path)",
        serve_hit_fraction * 100.0,
        serve_packet_fraction * 100.0
    );

    let (packet_record_qps, packet_hit_qps, packet_ratio, packet_allocs) =
        measure_packet_cache(quick);
    println!("packet cache (direct handle_datagram, 16 hot keys, EDNS+cookie):");
    println!(
        "  record path (capacity 0): {packet_record_qps:>9.0} queries/s \
         (shard lock + RRset walk + re-encode)"
    );
    println!(
        "  packet path (default):    {packet_hit_qps:>9.0} queries/s \
         ({packet_allocs:.3} allocs/query, memcpy + patch + cookie splice)"
    );
    println!("  packet/record: {packet_ratio:.2}x (best of alternating pairs)");
    // E2e hot-key pair, informational: the loopback client round trip
    // dominates, compressing whatever the hot path saves.
    let (e2e_packet_on, _, e2e_on_fraction) = measure_serve(
        lookups,
        rounds,
        16,
        zdns_core::DEFAULT_PACKET_CACHE_CAPACITY,
    );
    let (e2e_packet_off, _, _) = measure_serve(lookups, rounds, 16, 0);
    let e2e_packet_ratio = e2e_packet_on / e2e_packet_off;
    println!(
        "  e2e hot-key fleet (informational): on {e2e_packet_on:>8.0} vs off \
         {e2e_packet_off:>8.0} queries/s ({e2e_packet_ratio:.2}x, {:.1}% packet hits)",
        e2e_on_fraction * 100.0
    );

    let (
        uniform_shared,
        uniform_static,
        paced_shared,
        paced_static,
        backoff_shared,
        backoff_static,
        checkpoint_shared,
        checkpoint_ratio,
    ) = measure_pipeline(quick);
    let uniform_ratio = uniform_shared / uniform_static;
    let paced_ratio = paced_shared / paced_static;
    // The no-regression gate covers both halves of the leasing design:
    // credit-pool CAS cost (unpaced) and SharedPacer mutex cost (paced).
    let gated_uniform_ratio = uniform_ratio.min(paced_ratio);
    let steal_speedup = backoff_shared / backoff_static;
    println!("scan pipeline (shared credit pool vs static split, 2 workers):");
    println!(
        "  uniform:         shared {uniform_shared:>8.0} vs static {uniform_static:>8.0} \
         lookups/s ({uniform_ratio:.2}x)"
    );
    println!(
        "  uniform paced:   shared {paced_shared:>8.0} vs static {paced_static:>8.0} \
         lookups/s ({paced_ratio:.2}x — shared-pacer mutex on every send)"
    );
    println!(
        "  partial backoff: shared {backoff_shared:>8.1} vs static {backoff_static:>8.1} \
         lookups/s ({steal_speedup:.2}x — parked lookups free the window)"
    );
    println!(
        "  checkpointed:    durable {checkpoint_shared:>8.0} vs plain {uniform_shared:>8.0} \
         lookups/s ({checkpoint_ratio:.2}x paired — keeper bookkeeping + snapshot every 1000)"
    );

    let (paced_rows, paced_report) = measure_paced_scaling(quick);
    assert!(
        paced_report.token_blocks_leased > 0,
        "the concurrent-pacer runs must lease token blocks"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let paced_gate_ratio = paced_rows
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| r.ratio)
        .expect("4-worker row always measured");
    println!("paced scaling (10M pps budget, concurrent vs legacy-shared pacer, {cores} cores):");
    for row in &paced_rows {
        println!(
            "  {} worker{}: concurrent {:>8.0} vs legacy {:>8.0} lookups/s ({:.2}x paired)",
            row.workers,
            if row.workers == 1 { " " } else { "s" },
            row.concurrent,
            row.legacy,
            row.ratio
        );
    }
    println!(
        "  4-worker concurrent telemetry: {} blocks leased, {} CAS retries, {} stripe waits",
        paced_report.token_blocks_leased,
        paced_report.pacer_cas_retries,
        paced_report.pacer_stripe_waits
    );

    let io_backend_json = match &uring_result {
        Some((uring_rate, uring_report, uring_allocs)) => serde_json::json!({
            "available": true,
            "uring": {
                "lookups_per_sec": uring_rate,
                "ns_per_lookup": 1e9 / uring_rate,
                "allocs_per_lookup": uring_allocs,
                "ring_sqes": uring_report.ring_sqes,
                "ring_enters": uring_report.ring_enters,
                "sqes_per_enter":
                    uring_report.ring_sqes as f64 / uring_report.ring_enters.max(1) as f64,
                "enters_per_lookup": uring_report.ring_enters as f64 / lookups as f64,
                "cqe_batches": uring_report.cqe_batches,
                "sq_full_stalls": uring_report.sq_full_stalls,
            },
            "mmsg": {
                "lookups_per_sec": batched_rate,
                "ns_per_lookup": 1e9 / batched_rate,
            },
            "uring_over_mmsg": uring_ratio,
        }),
        None => serde_json::json!({
            "available": false,
            "note": "kernel refused io_uring setup; auto degrades to mmsg",
        }),
    };

    let json = serde_json::json!({
        "bench": "reactor_batched_vs_per_datagram",
        "schema_version": 6,
        "kernel": {
            "sendto_ns_per_datagram": sendto_ns,
            "sendmmsg_ns_per_datagram": sendmmsg_ns,
            "syscall_boundary_ns_saved_per_datagram": sendto_ns - sendmmsg_ns,
        },
        "codec": {
            "corpus": "13-NS referral + 13 glue A",
            "owned_decode_ns": owned_decode_ns,
            "view_decode_ns": view_decode_ns,
            "view_speedup": view_speedup,
        },
        "workload": {
            "lookups": lookups,
            "in_flight": IN_FLIGHT,
            "servers": 4,
            "latency_ms": 0,
            "quick": quick,
        },
        "per_datagram": {
            "batch_size": 1,
            "lookups_per_sec": per_datagram_rate,
            "ns_per_lookup": 1e9 / per_datagram_rate,
            "allocs_per_lookup": per_datagram_allocs,
            "send_syscalls": per_datagram_report.send_syscalls,
            "recv_syscalls": per_datagram_report.recv_syscalls,
        },
        "batched": {
            "batch_size": BATCH,
            "lookups_per_sec": batched_rate,
            "ns_per_lookup": 1e9 / batched_rate,
            "allocs_per_lookup": batched_allocs,
            "send_syscalls": batched_report.send_syscalls,
            "recv_syscalls": batched_report.recv_syscalls,
            "datagrams_per_send_syscall": batched_fill,
            "send_batch_fill": batched_report.send_batch_fill.summary(),
            "recv_batch_fill": batched_report.recv_batch_fill.summary(),
        },
        "speedup": speedup,
        "io_backend": io_backend_json,
        "serve": {
            "shards": 1,
            "io_backend": "mmsg",
            "distinct_names": 2_000,
            "queries_per_sec": serve_rate,
            "ns_per_query": 1e9 / serve_rate,
            "cache_hit_fraction": serve_hit_fraction,
            "packet_hit_fraction": serve_packet_fraction,
            "serve_over_scan": serve_ratio,
            "packet_cache": {
                "hot_names": 16,
                "direct": {
                    "record_path_qps": packet_record_qps,
                    "packet_path_qps": packet_hit_qps,
                    "ns_per_query": 1e9 / packet_hit_qps,
                    "packet_allocs_per_query": packet_allocs,
                    "packet_over_record": packet_ratio,
                    "measurement": "best per-pair ratio over alternating (record, packet) rounds through ServerRole::handle_datagram; qps are each side's best round",
                },
                "e2e": {
                    "packet_on_qps": e2e_packet_on,
                    "packet_off_qps": e2e_packet_off,
                    "packet_hit_fraction": e2e_on_fraction,
                    "packet_over_record": e2e_packet_ratio,
                    "note": "informational — the loopback client round trip dominates e2e latency, compressing the hot-path win the direct pair isolates",
                },
            },
        },
        "pipeline": {
            "workers": 2,
            "uniform": {
                "shared_lookups_per_sec": uniform_shared,
                "static_lookups_per_sec": uniform_static,
                "shared_over_static": uniform_ratio,
            },
            "uniform_paced": {
                "rate_pps": 10_000_000.0,
                "shared_lookups_per_sec": paced_shared,
                "static_lookups_per_sec": paced_static,
                "shared_over_static": paced_ratio,
            },
            "partial_backoff": {
                "dead_fraction": 0.75,
                "shared_lookups_per_sec": backoff_shared,
                "static_lookups_per_sec": backoff_static,
                "steal_speedup": steal_speedup,
            },
            "checkpoint": {
                "checkpoint_every": 1000,
                "checkpointed_lookups_per_sec": checkpoint_shared,
                "plain_lookups_per_sec": uniform_shared,
                "checkpointed_over_plain": checkpoint_ratio,
                "measurement": "best per-pair ratio over 3 alternating (plain, durable) rounds; lookups/s are each side's best round",
            },
            "paced_scaling": {
                "rate_pps": 10_000_000.0,
                "cores": cores,
                "scaling": paced_rows.iter().map(|r| serde_json::json!({
                    "workers": r.workers,
                    "concurrent_lookups_per_sec": r.concurrent,
                    "legacy_lookups_per_sec": r.legacy,
                    "concurrent_over_legacy": r.ratio,
                })).collect::<Vec<_>>(),
                "gate_workers": 4,
                "concurrent_over_legacy": paced_gate_ratio,
                "token_blocks_leased": paced_report.token_blocks_leased,
                "pacer_cas_retries": paced_report.pacer_cas_retries,
                "pacer_stripe_waits": paced_report.pacer_stripe_waits,
                "measurement": "best per-pair ratio over alternating (legacy, concurrent) rounds; lookups/s are each side's best round",
            },
        },
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
    println!("wrote {out_path}");

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("bench_reactor: FAIL — speedup {speedup:.2}x below the {min:.2}x gate");
            std::process::exit(1);
        }
        println!("bench_reactor: speedup gate passed ({speedup:.2}x >= {min:.2}x)");
    }
    if let Some(min) = min_view_speedup {
        if view_speedup < min {
            eprintln!(
                "bench_reactor: FAIL — view decode {view_speedup:.2}x below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("bench_reactor: view-decode gate passed ({view_speedup:.2}x >= {min:.2}x)");
    }
    if let Some(min) = min_uniform_ratio {
        if gated_uniform_ratio < min {
            eprintln!(
                "bench_reactor: FAIL — shared-queue uniform throughput \
                 {gated_uniform_ratio:.2}x of static split (unpaced {uniform_ratio:.2}x, \
                 paced {paced_ratio:.2}x), below the {min:.2}x no-regression gate"
            );
            std::process::exit(1);
        }
        println!(
            "bench_reactor: shared-queue uniform gate passed \
             (min(unpaced {uniform_ratio:.2}x, paced {paced_ratio:.2}x) >= {min:.2}x)"
        );
    }
    if let Some(min) = min_uring_ratio {
        match uring_ratio {
            Some(ratio) if ratio < min => {
                eprintln!(
                    "bench_reactor: FAIL — uring throughput {ratio:.2}x of mmsg, below \
                     the {min:.2}x gate"
                );
                std::process::exit(1);
            }
            Some(ratio) => {
                println!("bench_reactor: uring gate passed ({ratio:.2}x >= {min:.2}x)");
            }
            None => {
                // No ring on this kernel: degrading to mmsg *is* the
                // specified behaviour, so the gate passes vacuously.
                println!("bench_reactor: uring gate skipped (io_uring unavailable)");
            }
        }
    }
    if let Some(min) = min_serve_ratio {
        if serve_ratio < min {
            eprintln!(
                "bench_reactor: FAIL — serve throughput {serve_ratio:.2}x of the scan \
                 path, below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("bench_reactor: serve gate passed ({serve_ratio:.2}x >= {min:.2}x)");
    }
    if let Some(min) = min_packet_ratio {
        if packet_ratio < min {
            eprintln!(
                "bench_reactor: FAIL — packet-hit path at {packet_ratio:.2}x of the \
                 record-hit path, below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("bench_reactor: packet-cache gate passed ({packet_ratio:.2}x >= {min:.2}x)");
    }
    if let Some(min) = min_checkpoint_ratio {
        if checkpoint_ratio < min {
            eprintln!(
                "bench_reactor: FAIL — checkpointed pipeline at {checkpoint_ratio:.2}x of \
                 the plain pipeline, below the {min:.2}x overhead gate"
            );
            std::process::exit(1);
        }
        println!(
            "bench_reactor: checkpoint overhead gate passed \
             ({checkpoint_ratio:.2}x >= {min:.2}x)"
        );
    }
    if let Some(min) = min_paced_ratio {
        if cores < 2 {
            // The gated property is cross-worker contention relief; a
            // single hardware thread time-slices the workers, so the
            // legacy mutex is effectively uncontended and the ratio
            // measures scheduler noise, not the pacer. Same shape as the
            // uring gate's auto-pass on ringless kernels.
            println!(
                "bench_reactor: paced-scaling gate skipped ({cores} core — cross-worker \
                 mutex contention unexpressible; measured {paced_gate_ratio:.2}x recorded)"
            );
        } else if paced_gate_ratio < min {
            eprintln!(
                "bench_reactor: FAIL — 4-worker concurrent pacer at {paced_gate_ratio:.2}x \
                 of the legacy shared pacer, below the {min:.2}x gate"
            );
            std::process::exit(1);
        } else {
            println!(
                "bench_reactor: paced-scaling gate passed ({paced_gate_ratio:.2}x >= {min:.2}x)"
            );
        }
    }
}
