//! Figure 1 — ZDNS scalability: successes/second vs. thread count for
//! A and PTR lookups across {Google, Cloudflare, Iterative} resolvers and
//! {/32, /29, /28} scanning prefixes.
//!
//! Paper shape to reproduce: rates climb with threads and plateau around
//! 50K (~91.6K A/s on Cloudflare, ~102K PTR/s on Google, ~18K/s
//! iterative); a /32 source hits the socket/port cap and Google's
//! per-client rate limit (~6× fewer successes).
//!
//! Run: `cargo run --release -p zdns-bench --bin fig1_thread_sweep`
//! (`--quick` for a smoke-scale sweep).

use zdns_bench::*;

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let threads_grid: &[usize] = if quick {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000, 5_000, 10_000, 25_000, 50_000, 75_000, 100_000]
    };
    let prefixes: &[(usize, &str)] = if quick {
        &[(1, "/32"), (16, "/28")]
    } else {
        &[(1, "/32"), (8, "/29"), (16, "/28")]
    };
    let resolvers = [
        TargetResolver::Google,
        TargetResolver::Cloudflare,
        TargetResolver::Iterative,
    ];
    let workloads = [Workload::A, Workload::Ptr];

    println!("Figure 1: successes/second vs threads (paper: Fig. 1, 6 panels)\n");
    for workload in workloads {
        for resolver in resolvers {
            println!(
                "-- panel: {} lookups via {} --",
                workload.label(),
                resolver.label()
            );
            let table = TablePrinter::new(&[
                "threads",
                "prefix",
                "eff_threads",
                "succ/s",
                "succ_%",
                "queries/s",
            ]);
            for &(ips, prefix_label) in prefixes {
                for &threads in threads_grid {
                    let spec = ScanSpec {
                        resolver,
                        workload,
                        threads,
                        source_ips: ips,
                        jobs: jobs_for(threads, quick),
                        ..ScanSpec::default()
                    };
                    let o = run_scan(&universe, &spec);
                    table.row(&[
                        threads.to_string(),
                        prefix_label.to_string(),
                        o.report.effective_threads.to_string(),
                        format!("{:.0}", o.successes_per_sec),
                        format!("{:.1}", o.success_rate * 100.0),
                        format!("{:.0}", o.queries_per_sec),
                    ]);
                }
            }
            println!();
        }
    }
    println!(
        "paper reference points: Cloudflare A ≈ 91.6K/s, Google PTR ≈ 102K/s,\n\
         iterative ≈ 18K/s at ≥50K threads; /32 + Google ≈ 6x fewer successes."
    );
}
