//! # zdns-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (run
//! with `--release`; pass `--quick` for a fast smoke sweep), plus criterion
//! microbenches for the wire codec, cache, and resolution hot paths.
//!
//! ## Calibration
//!
//! The simulator's absolute throughput depends on two effective per-packet
//! CPU costs, calibrated once against §4.1's observations ("a single
//! virtual core uses 100% of resources at approximately 2K ZDNS threads",
//! 24 cores, ~91–102K successes/s external plateau, ~18K/s iterative
//! plateau at 67K queries/s):
//!
//! * [`EXTERNAL_PACKET_US`] — per-core cost of one packet in external mode
//!   (send or receive, including JSON output amortization).
//! * [`ITERATIVE_PACKET_US`] — the same for iterative mode, heavier due to
//!   referral parsing and cache maintenance.
//!
//! Everything else (latency distributions, loss, rate limits, cache
//! policy) is structural. EXPERIMENTS.md records paper-vs-measured rows.

use std::net::Ipv4Addr;
use std::sync::Arc;

use zdns_baselines::unbound_resolver;
use zdns_core::{ResolutionMode, Resolver, ResolverConfig};
use zdns_netsim::{
    Engine, EngineConfig, PublicResolverConfig, PublicResolverSim, RunReport, SECONDS,
};
use zdns_wire::{Name, Question, RecordType};
use zdns_workloads::{CtCorpus, Ipv4Walk};
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

/// Per-core µs per packet, external mode (→ ~200K pps on 24 cores).
pub const EXTERNAL_PACKET_US: u64 = 120;
/// Per-core µs per packet, iterative mode. Much heavier than external
/// mode: referral classification, bailiwick checks, and selective-cache
/// maintenance run on every hop, and the paper's own numbers imply it
/// (67K queries/s saturating 24 cores → ~350µs/packet-pair per core).
pub const ITERATIVE_PACKET_US: u64 = 500;

/// The resolver column of Figure 1 / Tables 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetResolver {
    /// Simulated Google Public DNS (per-client rate limited).
    Google,
    /// Simulated Cloudflare (no client limits).
    Cloudflare,
    /// ZDNS's own iterative resolution.
    Iterative,
    /// A co-located Unbound (Table 2).
    Unbound,
}

impl TargetResolver {
    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            TargetResolver::Google => "Google",
            TargetResolver::Cloudflare => "Cloudflare",
            TargetResolver::Iterative => "Iterative",
            TargetResolver::Unbound => "Unbound",
        }
    }
}

/// The workload column (A over corpus names, PTR over random public IPv4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A-record lookups of corpus fqdns.
    A,
    /// PTR lookups of public IPv4 addresses.
    Ptr,
}

impl Workload {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::Ptr => "PTR",
        }
    }
}

/// One experiment point.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Which resolver column.
    pub resolver: TargetResolver,
    /// Which workload.
    pub workload: Workload,
    /// Lookup routine count.
    pub threads: usize,
    /// Scanning source IPs (1=/32, 8=/29, 16=/28).
    pub source_ips: usize,
    /// Selective cache capacity.
    pub cache_size: usize,
    /// Retries per query.
    pub retries: u32,
    /// Number of lookups to simulate at this point.
    pub jobs: u64,
    /// Seeds (universe is shared; this perturbs the engine + workload).
    pub seed: u64,
}

impl Default for ScanSpec {
    fn default() -> Self {
        ScanSpec {
            resolver: TargetResolver::Iterative,
            workload: Workload::A,
            threads: 10_000,
            source_ips: 16,
            cache_size: 600_000,
            retries: 3,
            jobs: 100_000,
            seed: 1,
        }
    }
}

/// Measured outcome of one experiment point.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Steady-state successes per (virtual) second.
    pub successes_per_sec: f64,
    /// Steady-state queries per second.
    pub queries_per_sec: f64,
    /// Overall success fraction.
    pub success_rate: f64,
    /// Selective-cache hit rate (iterative only; 0 otherwise).
    pub cache_hit_rate: f64,
    /// Virtual makespan in seconds.
    pub makespan_secs: f64,
    /// Mean per-lookup duration in seconds.
    pub mean_lookup_secs: f64,
    /// The raw engine report.
    pub report: RunReport,
}

/// Build the shared universe for the benchmarks (default seed).
pub fn bench_universe() -> Arc<SyntheticUniverse> {
    Arc::new(SyntheticUniverse::new(SynthConfig::default()))
}

/// Resolver addresses used by the harness.
pub const GOOGLE: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// Cloudflare model address.
pub const CLOUDFLARE: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);
/// Local Unbound model address.
pub const LOCALHOST: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

/// Tuned public resolver models: the paper-calibrated latency profile
/// (anycast RTT + ~0.6s mean recursion on misses puts the Figure 1 knee
/// near 45K threads).
pub fn tuned_google() -> PublicResolverSim {
    let mut cfg = PublicResolverConfig::google(GOOGLE);
    cfg.miss_extra_ms = 620.0;
    PublicResolverSim::new(cfg)
}

/// Cloudflare with the same latency tuning.
pub fn tuned_cloudflare() -> PublicResolverSim {
    let mut cfg = PublicResolverConfig::cloudflare(CLOUDFLARE);
    cfg.miss_extra_ms = 600.0;
    PublicResolverSim::new(cfg)
}

/// Run one experiment point.
pub fn run_scan(universe: &Arc<SyntheticUniverse>, spec: &ScanSpec) -> ScanOutcome {
    let mode = match spec.resolver {
        TargetResolver::Google => ResolutionMode::External {
            servers: vec![GOOGLE],
        },
        TargetResolver::Cloudflare => ResolutionMode::External {
            servers: vec![CLOUDFLARE],
        },
        TargetResolver::Unbound => ResolutionMode::External {
            servers: vec![LOCALHOST],
        },
        TargetResolver::Iterative => ResolutionMode::Iterative,
    };
    let resolver_config = ResolverConfig {
        mode,
        retries: spec.retries,
        cache_size: spec.cache_size,
        trace: false,
        root_hints: universe.root_hints(),
        ..ResolverConfig::default()
    };
    let resolver = Resolver::new(resolver_config);

    let per_packet = match spec.resolver {
        TargetResolver::Iterative => ITERATIVE_PACKET_US,
        _ => EXTERNAL_PACKET_US,
    };
    let mut engine_config = EngineConfig {
        threads: spec.threads,
        client_ips: (0..spec.source_ips.max(1))
            .map(|i| Ipv4Addr::new(192, 0, 2, (i + 1) as u8))
            .collect(),
        per_packet_cpu_us: per_packet,
        seed: spec.seed,
        stagger: SECONDS,
        ..EngineConfig::default()
    };
    if spec.resolver == TargetResolver::Unbound {
        let base = zdns_baselines::unbound_engine_config(
            spec.threads,
            spec.workload == Workload::Ptr,
            spec.seed,
        );
        engine_config.threads = base.threads;
        engine_config.local_resolver_cpu_us = base.local_resolver_cpu_us;
    }

    let mut engine = Engine::new(engine_config, Arc::clone(universe) as Arc<dyn Universe>);
    engine.add_resolver(tuned_google());
    engine.add_resolver(tuned_cloudflare());
    engine.add_resolver(unbound_resolver());

    let report = match spec.workload {
        Workload::A => {
            let corpus = CtCorpus::new(universe.config().seed, 486, 1211);
            // Offset the corpus window per seed so consecutive trials do
            // not overlap names (the paper's §4.1 methodology).
            let offset = spec.seed.wrapping_mul(1_000_003) % 1_000_000_000;
            let mut names = (0..spec.jobs).map(move |i| corpus.fqdn(offset + i, (i * 7) % 3));
            let r2 = resolver.clone();
            engine.run(move || {
                let name = names.next()?;
                let parsed: Name = name.parse().ok()?;
                Some(r2.machine(Question::new(parsed, RecordType::A), None))
            })
        }
        Workload::Ptr => {
            let mut ips = Ipv4Walk::new(spec.seed.wrapping_add(77), spec.jobs);
            let r2 = resolver.clone();
            engine.run(move || {
                let ip = ips.next()?;
                Some(r2.machine(Question::new(Name::reverse_ipv4(ip), RecordType::PTR), None))
            })
        }
    };

    ScanOutcome {
        successes_per_sec: report.steady_success_rate(),
        queries_per_sec: report.steady_query_rate(),
        success_rate: report.success_rate(),
        cache_hit_rate: resolver.core().cache.stats.hit_rate(),
        makespan_secs: zdns_netsim::as_secs_f64(report.makespan),
        mean_lookup_secs: report.mean_job_secs(),
        report,
    }
}

/// Format seconds as the paper does: `10.6m`, `12.1h`.
pub fn human_time(secs: f64) -> String {
    if secs < 90.0 {
        format!("{secs:.1}s")
    } else if secs < 5400.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{:.1}h", secs / 3600.0)
    }
}

/// Extrapolate a full-scale duration from a steady-state rate.
pub fn extrapolate_time(total_lookups: f64, successes_per_sec: f64) -> f64 {
    if successes_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    total_lookups / successes_per_sec
}

/// `--quick` support: scale job counts down for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Choose a job count for a sweep point: enough for steady state.
pub fn jobs_for(threads: usize, quick: bool) -> u64 {
    let base = (threads as u64 * 6).max(40_000);
    if quick {
        (threads as u64 * 2).max(5_000).min(base)
    } else {
        base
    }
}

/// Simple aligned table printer for the bench binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> TablePrinter {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let printer = TablePrinter { widths };
        printer.row(headers);
        let line: Vec<String> = printer.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", line.join("-+-"));
        printer
    }

    /// Print one row.
    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        let formatted: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{:>width$}", c.as_ref(), width = w))
            .collect();
        println!("{}", formatted.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_time_formats() {
        assert_eq!(human_time(45.0), "45.0s");
        assert_eq!(human_time(636.0), "10.6m");
        assert_eq!(human_time(43_560.0), "12.1h");
    }

    #[test]
    fn extrapolation_math() {
        let t = extrapolate_time(50_000_000.0, 80_000.0);
        assert!((t - 625.0).abs() < 1.0);
    }

    #[test]
    fn quick_scan_point_runs() {
        let universe = bench_universe();
        let outcome = run_scan(
            &universe,
            &ScanSpec {
                resolver: TargetResolver::Cloudflare,
                workload: Workload::A,
                threads: 256,
                jobs: 3_000,
                ..ScanSpec::default()
            },
        );
        assert!(outcome.success_rate > 0.9, "{}", outcome.success_rate);
        assert!(outcome.successes_per_sec > 0.0);
    }

    #[test]
    fn iterative_point_populates_cache_stats() {
        let universe = bench_universe();
        let outcome = run_scan(
            &universe,
            &ScanSpec {
                resolver: TargetResolver::Iterative,
                workload: Workload::Ptr,
                threads: 256,
                jobs: 3_000,
                ..ScanSpec::default()
            },
        );
        assert!(outcome.cache_hit_rate > 0.0);
        assert!(outcome.success_rate > 0.8, "{}", outcome.success_rate);
    }
}
