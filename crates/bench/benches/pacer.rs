//! Criterion microbenches for the pacer: it sits on the reactor's send
//! hot path, so admission must stay cheap even with large host tables.

use std::net::Ipv4Addr;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zdns_core::{Pacer, PacerConfig};
use zdns_pacing::{SendGate, TokenBucket, SECONDS};

fn bench_pacer(c: &mut Criterion) {
    c.bench_function("bucket_reserve", |b| {
        let mut bucket = TokenBucket::new(100_000.0, 64.0);
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000;
            black_box(bucket.reserve(now))
        })
    });

    c.bench_function("pacer_admit_global_only", |b| {
        let mut pacer = Pacer::new(PacerConfig {
            rate_pps: 1e9, // never actually defers: measures the fast path
            ..PacerConfig::default()
        });
        let dest = Ipv4Addr::new(8, 8, 8, 8);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            black_box(pacer.admit(dest, now))
        })
    });

    c.bench_function("pacer_admit_per_host_10k_dests", |b| {
        let mut pacer = Pacer::new(PacerConfig {
            rate_pps: 1e9,
            per_host_pps: 1e6,
            backoff: true,
            ..PacerConfig::default()
        });
        // Warm a realistic host table.
        for i in 0..10_000u32 {
            let ip = Ipv4Addr::from(0x0B00_0000 + i);
            let _ = pacer.admit(ip, 0);
        }
        let mut i = 0u32;
        let mut now = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            now += 1_000;
            black_box(pacer.admit(Ipv4Addr::from(0x0B00_0000 + i), now))
        })
    });

    c.bench_function("pacer_failure_feedback", |b| {
        let mut pacer = Pacer::new(PacerConfig {
            backoff: true,
            ..PacerConfig::default()
        });
        let dest = Ipv4Addr::new(192, 0, 2, 7);
        let mut now = 0u64;
        b.iter(|| {
            now += SECONDS;
            pacer.on_failure(dest, now);
            pacer.on_success(dest, now);
        })
    });
}

criterion_group!(benches, bench_pacer);
criterion_main!(benches);
