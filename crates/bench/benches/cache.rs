//! Criterion microbenches for the selective cache: the hot structure every
//! iterative hop consults.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zdns_core::{Cache, CacheKey};
use zdns_wire::{Name, RData, Record, RecordType};

fn ns_records(zone: &str) -> Vec<Record> {
    (0..2)
        .map(|i| {
            Record::new(
                zone.parse().unwrap(),
                172_800,
                RData::Ns(format!("ns{i}.provider.com").parse().unwrap()),
            )
        })
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    // Pre-populate a paper-sized cache.
    let cache = Cache::new(600_000);
    for i in 0..300_000u32 {
        let zone = format!("zone{i}.com");
        cache.put(
            CacheKey {
                name: zone.parse().unwrap(),
                rtype: RecordType::NS,
            },
            ns_records(&zone),
            0,
        );
    }
    let hot: Name = "zone1234.com".parse().unwrap();
    let missing: Name = "unknown-zone.com".parse().unwrap();
    let deep: Name = "a.b.zone777.com".parse().unwrap();

    c.bench_function("cache_hit", |b| {
        b.iter(|| cache.get(black_box(&hot), RecordType::NS, 1))
    });
    c.bench_function("cache_miss", |b| {
        b.iter(|| cache.get(black_box(&missing), RecordType::NS, 1))
    });
    c.bench_function("cache_deepest_cut", |b| {
        b.iter(|| cache.deepest_cut(black_box(&deep), 1))
    });
    c.bench_function("cache_insert_evicting", |b| {
        let small = Cache::new(1_024);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let zone = format!("ev{i}.net");
            small.put(
                CacheKey {
                    name: zone.parse().unwrap(),
                    rtype: RecordType::NS,
                },
                ns_records(&zone),
                0,
            );
        })
    });
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
