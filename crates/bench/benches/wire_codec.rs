//! Criterion microbenches for the wire codec: the per-packet work the
//! engineering sections of the paper amortize across 100K+ packets/second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zdns_wire::rdata::{Mx, Soa, TxtData};
use zdns_wire::{
    encode_query_into, Cookie, Message, MessageView, Name, Question, RData, Record, RecordType,
    ScratchBuf,
};

fn referral_response() -> Message {
    let mut m = Message::query(
        0x1234,
        Question::new("www.example.com".parse().unwrap(), RecordType::A),
    );
    m.flags.response = true;
    for i in 0..13u8 {
        let ns: Name = format!("{}.gtld-servers.net", (b'a' + i) as char)
            .parse()
            .unwrap();
        m.authorities.push(Record::new(
            "com".parse().unwrap(),
            172800,
            RData::Ns(ns.clone()),
        ));
        m.additionals.push(Record::new(
            ns,
            172800,
            RData::A(std::net::Ipv4Addr::new(192, 5, 6, 30 + i)),
        ));
    }
    m
}

fn answer_response() -> Message {
    let mut m = Message::query(
        0x4321,
        Question::new("example.com".parse().unwrap(), RecordType::ANY),
    );
    m.flags.response = true;
    m.flags.authoritative = true;
    let name: Name = "example.com".parse().unwrap();
    m.answers.push(Record::new(
        name.clone(),
        300,
        RData::A("93.184.216.34".parse().unwrap()),
    ));
    m.answers.push(Record::new(
        name.clone(),
        300,
        RData::Mx(Mx {
            preference: 10,
            exchange: "mail.example.com".parse().unwrap(),
        }),
    ));
    m.answers.push(Record::new(
        name.clone(),
        300,
        RData::Txt(TxtData::from_text("v=spf1 include:_spf.example.com -all")),
    ));
    m.answers.push(Record::new(
        name.clone(),
        3600,
        RData::Soa(Soa {
            mname: "ns1.example.com".parse().unwrap(),
            rname: "hostmaster.example.com".parse().unwrap(),
            serial: 2022,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }),
    ));
    m
}

fn bench_codec(c: &mut Criterion) {
    let referral = referral_response();
    let referral_bytes = referral.encode().unwrap();
    let answer = answer_response();
    let answer_bytes = answer.encode().unwrap();

    c.bench_function("encode_referral_13ns", |b| {
        b.iter(|| black_box(&referral).encode().unwrap())
    });
    c.bench_function("decode_referral_13ns", |b| {
        b.iter(|| Message::decode(black_box(&referral_bytes)).unwrap())
    });
    c.bench_function("encode_answer_mixed", |b| {
        b.iter(|| black_box(&answer).encode().unwrap())
    });
    c.bench_function("decode_answer_mixed", |b| {
        b.iter(|| Message::decode(black_box(&answer_bytes)).unwrap())
    });
    // The borrowed view path: parse + scan the sections the way the
    // resolver's machine does (rtype checks, A addresses, NS targets) —
    // nothing promoted, nothing allocated.
    c.bench_function("decode_referral_13ns_view", |b| {
        b.iter(|| {
            let view = MessageView::parse(black_box(&referral_bytes)).unwrap();
            let mut ns = 0usize;
            for rec in view.authorities() {
                if rec.rtype == RecordType::NS {
                    ns += 1;
                }
            }
            let mut addrs = 0usize;
            for rec in view.additionals() {
                if rec.a_addr().is_some() {
                    addrs += 1;
                }
            }
            black_box((view.rcode(), ns, addrs))
        })
    });
    c.bench_function("decode_answer_mixed_view", |b| {
        b.iter(|| {
            let view = MessageView::parse(black_box(&answer_bytes)).unwrap();
            let mut seen = 0usize;
            for rec in view.answers() {
                seen += usize::from(rec.ttl > 0);
            }
            black_box((view.flags(), seen))
        })
    });
    // The reusable-scratch encode path vs the per-call Vec the owned
    // encoder returns.
    let question = Question::new("www.example.com".parse().unwrap(), RecordType::A);
    let cookie = Cookie::client([1, 2, 3, 4, 5, 6, 7, 8]);
    let mut scratch = ScratchBuf::new();
    c.bench_function("encode_query_scratch", |b| {
        b.iter(|| {
            scratch.reset();
            encode_query_into(&mut scratch, 0x4242, &question, true, Some(&cookie)).unwrap();
            black_box(scratch.len())
        })
    });
    c.bench_function("encode_query_owned", |b| {
        b.iter(|| {
            let mut msg = Message::query(0x4242, question.clone());
            msg.flags.recursion_desired = true;
            black_box(msg.encode().unwrap().len())
        })
    });
    let mut referral_scratch = ScratchBuf::new();
    c.bench_function("encode_referral_13ns_scratch", |b| {
        b.iter(|| {
            referral_scratch.reset();
            black_box(&referral)
                .encode_into(&mut referral_scratch)
                .unwrap();
            black_box(referral_scratch.len())
        })
    });
    c.bench_function("name_parse", |b| {
        b.iter(|| {
            "www.subdomain.example-domain.co.uk"
                .parse::<Name>()
                .unwrap()
        })
    });
    c.bench_function("udp_truncation_encode", |b| {
        b.iter(|| black_box(&referral).encode_udp(512).unwrap())
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
