//! Criterion macrobenches: full resolutions through the simulator (wall
//! time of the engine + resolver machinery, not virtual time).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zdns_bench::{run_scan, ScanSpec, TargetResolver, Workload};
use zdns_netsim::oracle;
use zdns_wire::{Name, Question, RecordType};
use zdns_zones::{SynthConfig, SyntheticUniverse};

fn bench_resolution(c: &mut Criterion) {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));

    c.bench_function("oracle_resolve_a", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                Question::new(
                    format!("bench{i}.com").parse::<Name>().unwrap(),
                    RecordType::A,
                )
            },
            |q| oracle::resolve(universe.as_ref(), &q),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("oracle_resolve_ptr", |b| {
        let mut i = 0u32;
        b.iter_batched(
            || {
                i += 1;
                let ip = std::net::Ipv4Addr::from(0x0801_0000u32.wrapping_add(i * 77));
                Question::new(Name::reverse_ipv4(ip), RecordType::PTR)
            },
            |q| oracle::resolve(universe.as_ref(), &q),
            BatchSize::SmallInput,
        )
    });

    let mut group = c.benchmark_group("sim_scan");
    group.sample_size(10);
    group.bench_function("iterative_2k_lookups", |b| {
        let u = Arc::clone(&universe);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_scan(
                &u,
                &ScanSpec {
                    resolver: TargetResolver::Iterative,
                    workload: Workload::A,
                    threads: 512,
                    jobs: 2_000,
                    seed,
                    ..ScanSpec::default()
                },
            )
        })
    });
    group.bench_function("external_2k_lookups", |b| {
        let u = Arc::clone(&universe);
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            run_scan(
                &u,
                &ScanSpec {
                    resolver: TargetResolver::Cloudflare,
                    workload: Workload::A,
                    threads: 512,
                    jobs: 2_000,
                    seed,
                    ..ScanSpec::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
