//! Criterion macrobenches: full resolutions through the simulator (wall
//! time of the engine + resolver machinery, not virtual time), plus the
//! real-socket driver shoot-out — the event-driven reactor multiplexing
//! ≥1000 in-flight lookups on few workers versus the old architecture of
//! one blocking exchange per OS thread.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zdns_bench::{run_scan, ScanSpec, TargetResolver, Workload};
use zdns_core::{
    drive_blocking, AddrMap, Admission, Driver, Reactor, ReactorConfig, Resolver, ResolverConfig,
    UdpTransport,
};
use zdns_netsim::{oracle, WireServer};
use zdns_wire::{Name, Question, RData, Record, RecordType};
use zdns_zones::{ExplicitUniverse, SynthConfig, SyntheticUniverse, Universe, Zone};

fn bench_resolution(c: &mut Criterion) {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));

    c.bench_function("oracle_resolve_a", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                Question::new(
                    format!("bench{i}.com").parse::<Name>().unwrap(),
                    RecordType::A,
                )
            },
            |q| oracle::resolve(universe.as_ref(), &q),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("oracle_resolve_ptr", |b| {
        let mut i = 0u32;
        b.iter_batched(
            || {
                i += 1;
                let ip = std::net::Ipv4Addr::from(0x0801_0000u32.wrapping_add(i * 77));
                Question::new(Name::reverse_ipv4(ip), RecordType::PTR)
            },
            |q| oracle::resolve(universe.as_ref(), &q),
            BatchSize::SmallInput,
        )
    });

    let mut group = c.benchmark_group("sim_scan");
    group.sample_size(10);
    group.bench_function("iterative_2k_lookups", |b| {
        let u = Arc::clone(&universe);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_scan(
                &u,
                &ScanSpec {
                    resolver: TargetResolver::Iterative,
                    workload: Workload::A,
                    threads: 512,
                    jobs: 2_000,
                    seed,
                    ..ScanSpec::default()
                },
            )
        })
    });
    group.bench_function("external_2k_lookups", |b| {
        let u = Arc::clone(&universe);
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            run_scan(
                &u,
                &ScanSpec {
                    resolver: TargetResolver::Cloudflare,
                    workload: Workload::A,
                    threads: 512,
                    jobs: 2_000,
                    seed,
                    ..ScanSpec::default()
                },
            )
        })
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Real sockets: reactor vs blocking thread pool
// ---------------------------------------------------------------------------

/// One authoritative zone with `n` names behind a loopback wire server
/// that delays each response by `latency` (responses overlap, as on a
/// real network — which is exactly what makes driver architecture matter).
fn loopback_resolver(
    n: usize,
    latency: Duration,
) -> (WireServer, Resolver, Arc<AddrMap>, Vec<Question>) {
    let server_ip: Ipv4Addr = "203.0.113.53".parse().unwrap();
    let mut zone = Zone::new(
        "bench.test".parse().unwrap(),
        "ns1.bench.test".parse().unwrap(),
        300,
    );
    for i in 0..n {
        zone.add(Record::new(
            format!("b{i}.bench.test").parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(10, 9, (i / 256) as u8, (i % 256) as u8)),
        ));
    }
    let mut universe = ExplicitUniverse::new();
    universe.host(server_ip, zone);
    let server =
        WireServer::start_with_latency(Arc::new(universe) as Arc<dyn Universe>, server_ip, latency)
            .unwrap();
    let real = server.addr();
    let addr_map: Arc<AddrMap> = Arc::new(move |_ip| real);
    let mut config = ResolverConfig::external(vec![server_ip]);
    config.timeout = 2 * zdns_netsim::SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let questions = (0..n)
        .map(|i| {
            Question::new(
                format!("b{i}.bench.test").parse::<Name>().unwrap(),
                RecordType::A,
            )
        })
        .collect();
    (server, resolver, addr_map, questions)
}

/// Drive every question through reactors (`workers` × `window` in-flight).
fn scan_with_reactors(
    resolver: &Resolver,
    addr_map: &Arc<AddrMap>,
    questions: &[Question],
    workers: usize,
    window: usize,
) -> (usize, usize) {
    std::thread::scope(|scope| {
        let chunk = questions.len().div_ceil(workers);
        let mut handles = Vec::new();
        for part in questions.chunks(chunk) {
            let resolver = resolver.clone();
            let addr_map = Arc::clone(addr_map);
            handles.push(scope.spawn(move || {
                let mut reactor = Reactor::new(
                    ReactorConfig {
                        max_in_flight: window,
                        source: Ipv4Addr::LOCALHOST,
                        ..ReactorConfig::default()
                    },
                    addr_map,
                )
                .unwrap();
                let mut next = 0usize;
                let mut feed = || {
                    if next < part.len() {
                        let machine = resolver.machine(part[next].clone(), None);
                        next += 1;
                        Admission::Admit(machine)
                    } else {
                        Admission::Exhausted
                    }
                };
                let mut done = 0usize;
                let mut on_done = |_| done += 1;
                let report = reactor.run_scan(&mut feed, &mut on_done);
                (done, report.peak_in_flight)
            }));
        }
        let mut total = 0;
        let mut peak_sum = 0;
        for h in handles {
            let (done, peak) = h.join().unwrap();
            total += done;
            peak_sum += peak;
        }
        assert_eq!(total, questions.len());
        // Sum of per-worker peaks ≈ scan-wide concurrent lookups (workers
        // ramp together on this workload); callers print it once.
        (total, peak_sum)
    })
}

/// The seed architecture: one blocking exchange per OS thread.
fn scan_with_blocking_pool(
    resolver: &Resolver,
    addr_map: &Arc<AddrMap>,
    questions: &[Question],
    threads: usize,
) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let done = &done;
            let resolver = resolver.clone();
            let addr_map = Arc::clone(addr_map);
            scope.spawn(move || {
                // One long-lived socket per thread (§3.4), one lookup at
                // a time per thread (the pre-reactor driver).
                let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= questions.len() {
                        return;
                    }
                    let mut machine = resolver.machine(questions[i].clone(), None);
                    drive_blocking(machine.as_mut(), &mut transport, &*addr_map);
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        done.load(std::sync::atomic::Ordering::Relaxed),
        questions.len()
    );
    questions.len()
}

fn bench_real_drivers(c: &mut Criterion) {
    const LOOKUPS: usize = 2_000;
    let latency = Duration::from_millis(10);
    let (_server, resolver, addr_map, questions) = loopback_resolver(LOOKUPS, latency);

    // Demonstrate the admission window actually fills: ≥1000 lookups in
    // flight on ≤8 workers before any timing runs.
    let (_, peak) = scan_with_reactors(&resolver, &addr_map, &questions, 8, 128);
    println!("reactor warm-up: {peak} lookups concurrently in flight on 8 workers");
    assert!(peak >= 1_000, "admission window failed to fill: {peak}");

    let mut group = c.benchmark_group("real_sockets_2k_lookups_10ms_rtt");
    group.sample_size(3);
    // The paper's architecture: ≥1000 lookups in flight on ≤8 workers,
    // one long-lived socket each.
    group.bench_function("reactor_8_workers_1024_inflight", |b| {
        b.iter(|| scan_with_reactors(&resolver, &addr_map, &questions, 8, 128))
    });
    group.bench_function("reactor_1_worker_1000_inflight", |b| {
        b.iter(|| scan_with_reactors(&resolver, &addr_map, &questions, 1, 1_000))
    });
    // The seed architecture it replaces: 256 OS threads, one blocking
    // exchange each.
    group.bench_function("blocking_pool_256_threads", |b| {
        b.iter(|| scan_with_blocking_pool(&resolver, &addr_map, &questions, 256))
    });
    group.finish();
}

criterion_group!(benches, bench_resolution, bench_real_drivers);
criterion_main!(benches);
