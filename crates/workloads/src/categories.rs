//! Cloudflare-style DNS content categories (§5 checks that availability is
//! independent of category — so the categorizer assigns them independently
//! of everything else, making that the ground truth).

use zdns_zones::hashing::h64;

/// Content categories, following Cloudflare's DNS category taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainCategory {
    /// Technology and computing.
    Technology,
    /// Entertainment and media.
    Entertainment,
    /// Health and medicine.
    Medical,
    /// Banking and finance.
    Finance,
    /// Schools and universities.
    Education,
    /// News and journalism.
    News,
    /// E-commerce.
    Shopping,
    /// Government services.
    Government,
    /// Travel and hospitality.
    Travel,
    /// Everything else.
    Other,
}

/// All categories.
pub const ALL_CATEGORIES: [DomainCategory; 10] = [
    DomainCategory::Technology,
    DomainCategory::Entertainment,
    DomainCategory::Medical,
    DomainCategory::Finance,
    DomainCategory::Education,
    DomainCategory::News,
    DomainCategory::Shopping,
    DomainCategory::Government,
    DomainCategory::Travel,
    DomainCategory::Other,
];

impl DomainCategory {
    /// Stable label.
    pub fn as_str(self) -> &'static str {
        match self {
            DomainCategory::Technology => "technology",
            DomainCategory::Entertainment => "entertainment",
            DomainCategory::Medical => "medical",
            DomainCategory::Finance => "finance",
            DomainCategory::Education => "education",
            DomainCategory::News => "news",
            DomainCategory::Shopping => "shopping",
            DomainCategory::Government => "government",
            DomainCategory::Travel => "travel",
            DomainCategory::Other => "other",
        }
    }
}

/// Categorize a base domain (deterministic, independent of DNS behaviour).
pub fn categorize(seed: u64, base_domain: &str) -> DomainCategory {
    let h = h64(
        seed,
        "category",
        base_domain.to_ascii_lowercase().as_bytes(),
    );
    // Skewed: ~30% Other, the rest split.
    match h % 100 {
        0..=13 => DomainCategory::Technology,
        14..=25 => DomainCategory::Entertainment,
        26..=31 => DomainCategory::Medical,
        32..=39 => DomainCategory::Finance,
        40..=45 => DomainCategory::Education,
        46..=52 => DomainCategory::News,
        53..=64 => DomainCategory::Shopping,
        65..=67 => DomainCategory::Government,
        68..=72 => DomainCategory::Travel,
        _ => DomainCategory::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorization_is_deterministic() {
        assert_eq!(categorize(1, "example.com"), categorize(1, "EXAMPLE.com"));
    }

    #[test]
    fn all_categories_reachable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000 {
            seen.insert(categorize(1, &format!("d{i}.com")));
        }
        assert_eq!(seen.len(), ALL_CATEGORIES.len());
    }
}
