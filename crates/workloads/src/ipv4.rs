//! The public IPv4 space — the PTR sweep workload ("3.7B publicly
//! accessible IPv4 addresses", §3.1).

use std::net::Ipv4Addr;

use zdns_zones::addressing::is_reserved;
use zdns_zones::hashing::splitmix64;

/// Exact number of non-reserved IPv4 addresses under the reproduction's
/// reservation rules (computed once; ~3.7B).
pub fn public_ipv4_count() -> u64 {
    // Count reserved space analytically per the `is_reserved` rules.
    let full: u64 = 1 << 32;
    let slash8: u64 = 1 << 24;
    let mut reserved: u64 = 0;
    reserved += 3 * slash8; // 0/8, 10/8, 127/8
    reserved += 64 * (1 << 16); // 100.64/10
    reserved += 1 << 16; // 169.254/16
    reserved += 16 * (1 << 16); // 172.16/12
    reserved += 1 << 16; // 192.168/16
    reserved += 1 << 16; // 192.0/16
    reserved += 2 * (1 << 16); // 198.18/15
    reserved += 32 * slash8; // 224/4 + 240/4
    full - reserved
}

/// Deterministic pseudo-random walk over the public IPv4 space (no
/// repeats within a period of 2^32, reserved space skipped) — the ZMap-
/// style permutation scanners use.
pub struct Ipv4Walk {
    state: u32,
    remaining: u64,
}

/// Multiplier for a full-period LCG mod 2^32 (Hull–Dobell conditions).
const LCG_A: u32 = 1_664_525;
const LCG_C: u32 = 1_013_904_223;

impl Ipv4Walk {
    /// Walk `count` public addresses starting from a seed.
    pub fn new(seed: u64, count: u64) -> Ipv4Walk {
        Ipv4Walk {
            state: splitmix64(seed) as u32,
            remaining: count,
        }
    }
}

impl Iterator for Ipv4Walk {
    type Item = Ipv4Addr;

    fn next(&mut self) -> Option<Ipv4Addr> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            self.state = self.state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            let addr = Ipv4Addr::from(self.state);
            if !is_reserved(addr) {
                self.remaining -= 1;
                return Some(addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_about_3_7_billion() {
        let count = public_ipv4_count();
        assert!((3_600_000_000..3_750_000_000).contains(&count), "{count}");
    }

    #[test]
    fn walk_skips_reserved() {
        for ip in Ipv4Walk::new(7, 100_000) {
            assert!(!is_reserved(ip), "{ip}");
        }
    }

    #[test]
    fn walk_is_deterministic_and_covers_widely() {
        let a: Vec<Ipv4Addr> = Ipv4Walk::new(9, 10_000).collect();
        let b: Vec<Ipv4Addr> = Ipv4Walk::new(9, 10_000).collect();
        assert_eq!(a, b);
        // A different seed gives a different walk.
        let c: Vec<Ipv4Addr> = Ipv4Walk::new(10, 10_000).collect();
        assert_ne!(a, c);
        // Spread across many /8s.
        let octets: std::collections::HashSet<u8> = a.iter().map(|ip| ip.octets()[0]).collect();
        assert!(octets.len() > 100, "{}", octets.len());
    }

    #[test]
    fn no_short_cycles() {
        let seen: std::collections::HashSet<Ipv4Addr> = Ipv4Walk::new(3, 50_000).collect();
        assert_eq!(seen.len(), 50_000, "LCG walk repeated early");
    }
}
