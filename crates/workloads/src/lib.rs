//! # zdns-workloads
//!
//! Workload generators for the evaluation: the CT-log-like domain corpus
//! (Appendix A / Table 3), the public IPv4 space for PTR sweeps, and the
//! content-category model the §5 case study correlates against.

#![warn(missing_docs)]

pub mod categories;
pub mod corpus;
pub mod ipv4;

pub use categories::{categorize, DomainCategory, ALL_CATEGORIES};
pub use corpus::{CorpusStats, CorpusStream, CtCorpus};
pub use ipv4::{public_ipv4_count, Ipv4Walk};
