//! The evaluation corpus: a deterministic generator of CT-log-like fully
//! qualified domain names matching the paper's Appendix A / Table 3 mix
//! (234M fqdns over 93M base domains across 1702 TLDs; 55% legacy gTLD /
//! 39% ccTLD / 6% new gTLD by fqdn).

use zdns_zones::hashing::{h64, unit};
use zdns_zones::tlds::{TldCategory, TldRegistry};

/// Subdomain labels seen on certificates, in rough popularity order.
const SUB_LABELS: [&str; 14] = [
    "www", "mail", "api", "dev", "shop", "m", "blog", "app", "staging", "cdn", "vpn", "portal",
    "webmail", "test",
];

/// Word fragments for base-domain labels.
const FRAGMENTS: [&str; 24] = [
    "blue", "fast", "cloud", "media", "shop", "tech", "data", "net", "soft", "green", "prime",
    "alpha", "nova", "metro", "core", "peak", "digi", "grid", "zen", "flux", "bright", "atlas",
    "vertex", "orbit",
];

/// Deterministic CT-log-like corpus over a TLD registry.
pub struct CtCorpus {
    tlds: TldRegistry,
    seed: u64,
}

/// Table 3-style counts measured over a generated sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Fully qualified names generated.
    pub fqdns: u64,
    /// Distinct base domains.
    pub domains: u64,
    /// fqdns per category: (legacy, ng, cc).
    pub fqdns_by_category: (u64, u64, u64),
    /// domains per category: (legacy, ng, cc).
    pub domains_by_category: (u64, u64, u64),
    /// Distinct TLDs seen per category: (legacy, ng, cc).
    pub tlds_by_category: (u64, u64, u64),
}

impl CtCorpus {
    /// Build a corpus generator (same seed ⇒ same names as the universe).
    pub fn new(seed: u64, n_cctlds: usize, n_ngtlds: usize) -> CtCorpus {
        CtCorpus {
            tlds: TldRegistry::generate(seed, n_cctlds, n_ngtlds),
            seed,
        }
    }

    /// The TLD registry in use.
    pub fn tlds(&self) -> &TldRegistry {
        &self.tlds
    }

    /// The `i`-th base domain: a word-ish label under a weighted TLD.
    pub fn base_domain(&self, i: u64) -> String {
        let h = h64(self.seed, "corpus-base", &i.to_le_bytes());
        let tld = self.tlds.sample(h);
        let a = FRAGMENTS[(h >> 8) as usize % FRAGMENTS.len()];
        let b = FRAGMENTS[(h >> 16) as usize % FRAGMENTS.len()];
        // The index keeps names collision-free without a dedup set.
        format!("{a}{b}{i}.{}", tld.label)
    }

    /// How many fqdns the corpus emits for base domain `i` (≥1; the mean
    /// tracks the per-category fqdns/domain ratios from Table 3).
    pub fn fqdns_for_base(&self, i: u64) -> u64 {
        let h = h64(self.seed, "corpus-subcount", &i.to_le_bytes());
        let tld = self
            .tlds
            .by_label(self.base_domain(i).rsplit('.').next().expect("has tld"))
            .expect("generated TLD exists");
        let mean = tld.fqdns_per_domain.max(1.0);
        // Geometric-ish: 1 + extra, mean matches.
        let p = 1.0 / mean;
        let u = unit(h);
        let extra = (u.ln() / (1.0 - p).ln()).floor() as u64;
        1 + extra.min(24)
    }

    /// The `j`-th fqdn of base domain `i` (j=0 is the apex).
    pub fn fqdn(&self, i: u64, j: u64) -> String {
        let base = self.base_domain(i);
        if j == 0 {
            return base;
        }
        let idx = (j as usize - 1) % SUB_LABELS.len();
        if j as usize - 1 < SUB_LABELS.len() {
            format!("{}.{base}", SUB_LABELS[idx])
        } else {
            format!("{}{}.{base}", SUB_LABELS[idx], j)
        }
    }

    /// Iterator over `n` fqdns drawn across base domains in corpus order.
    pub fn fqdns(&self, n: u64) -> impl Iterator<Item = String> + '_ {
        let mut base = 0u64;
        let mut sub = 0u64;
        let mut per_base = self.fqdns_for_base(0);
        (0..n).map(move |_| {
            if sub >= per_base {
                base += 1;
                sub = 0;
                per_base = self.fqdns_for_base(base);
            }
            let out = self.fqdn(base, sub);
            sub += 1;
            out
        })
    }

    /// Iterator over `n` distinct base domains (the §6 CAA scan input).
    pub fn base_domains(&self, n: u64) -> impl Iterator<Item = String> + '_ {
        (0..n).map(|i| self.base_domain(i))
    }

    /// Consume the corpus into an owning streaming generator of its
    /// first `n` fqdns — the form scan pipelines plug in as an input
    /// source (`--workload ct-corpus`): names are generated one pull at
    /// a time, so a paper-scale run never materializes the set.
    pub fn into_stream(self, n: u64) -> CorpusStream {
        let per_base = self.fqdns_for_base(0);
        CorpusStream {
            corpus: self,
            base: 0,
            sub: 0,
            per_base,
            remaining: n,
        }
    }

    /// Generate a sample and measure its Table 3 shape.
    pub fn stats(&self, sample_fqdns: u64) -> CorpusStats {
        let mut stats = CorpusStats::default();
        let mut seen_tlds: std::collections::HashSet<(u8, String)> =
            std::collections::HashSet::new();
        let mut base = 0u64;
        let mut emitted = 0u64;
        while emitted < sample_fqdns {
            let domain = self.base_domain(base);
            let tld_label = domain.rsplit('.').next().expect("has tld").to_string();
            let tld = self.tlds.by_label(&tld_label).expect("generated TLD");
            let cat = match tld.category {
                TldCategory::LegacyGtld => 0u8,
                TldCategory::NewGtld => 1,
                TldCategory::CcTld => 2,
                TldCategory::Infra => unreachable!("corpus never samples arpa"),
            };
            let fqdns = self.fqdns_for_base(base).min(sample_fqdns - emitted);
            stats.domains += 1;
            stats.fqdns += fqdns;
            match cat {
                0 => {
                    stats.domains_by_category.0 += 1;
                    stats.fqdns_by_category.0 += fqdns;
                }
                1 => {
                    stats.domains_by_category.1 += 1;
                    stats.fqdns_by_category.1 += fqdns;
                }
                _ => {
                    stats.domains_by_category.2 += 1;
                    stats.fqdns_by_category.2 += fqdns;
                }
            }
            seen_tlds.insert((cat, tld_label));
            emitted += fqdns;
            base += 1;
        }
        for (cat, _) in seen_tlds {
            match cat {
                0 => stats.tlds_by_category.0 += 1,
                1 => stats.tlds_by_category.1 += 1,
                _ => stats.tlds_by_category.2 += 1,
            }
        }
        stats
    }
}

/// An owning streaming generator over a corpus's fqdns, in corpus order
/// (identical to [`CtCorpus::fqdns`], but self-contained so it can be
/// boxed into a scan pipeline's input slot and sent across threads).
pub struct CorpusStream {
    corpus: CtCorpus,
    base: u64,
    sub: u64,
    per_base: u64,
    remaining: u64,
}

impl CorpusStream {
    /// Names this stream has left to yield.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for CorpusStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.sub >= self.per_base {
            self.base += 1;
            self.sub = 0;
            self.per_base = self.corpus.fqdns_for_base(self.base);
        }
        let out = self.corpus.fqdn(self.base, self.sub);
        self.sub += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> CtCorpus {
        CtCorpus::new(0x5DA5_2D45, 486, 1211)
    }

    #[test]
    fn stream_matches_borrowed_iterator() {
        let borrowed: Vec<String> = corpus().fqdns(5_000).collect();
        let streamed: Vec<String> = corpus().into_stream(5_000).collect();
        assert_eq!(borrowed, streamed);
        let stream = corpus().into_stream(42);
        assert_eq!(stream.remaining(), 42);
        assert_eq!(stream.size_hint(), (42, Some(42)));
    }

    #[test]
    fn deterministic() {
        let a = corpus();
        let b = corpus();
        for i in 0..100 {
            assert_eq!(a.base_domain(i), b.base_domain(i));
        }
    }

    #[test]
    fn base_domains_unique() {
        let c = corpus();
        let set: std::collections::HashSet<String> = c.base_domains(10_000).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn fqdn_zero_is_apex() {
        let c = corpus();
        assert_eq!(c.fqdn(7, 0), c.base_domain(7));
        assert!(c.fqdn(7, 1).starts_with("www."));
    }

    #[test]
    fn fqdns_have_valid_names() {
        let c = corpus();
        for name in c.fqdns(5_000) {
            assert!(
                name.parse::<zdns_wire::Name>().is_ok(),
                "invalid name {name}"
            );
        }
    }

    #[test]
    fn category_mix_tracks_table3() {
        let c = corpus();
        let stats = c.stats(100_000);
        let total_fqdns = stats.fqdns as f64;
        let legacy_share = stats.fqdns_by_category.0 as f64 / total_fqdns;
        let ng_share = stats.fqdns_by_category.1 as f64 / total_fqdns;
        let cc_share = stats.fqdns_by_category.2 as f64 / total_fqdns;
        // Table 3 fqdn shares: 55.3% / 6.1% / 38.7%. The corpus couples
        // TLD sampling (by domain) with fqdns-per-domain (by category), so
        // tolerate a few points of drift.
        assert!((legacy_share - 0.553).abs() < 0.06, "legacy {legacy_share}");
        assert!((ng_share - 0.061).abs() < 0.03, "ng {ng_share}");
        assert!((cc_share - 0.387).abs() < 0.06, "cc {cc_share}");
    }

    #[test]
    fn fqdns_per_domain_ratio_near_2_5() {
        let c = corpus();
        let stats = c.stats(100_000);
        let ratio = stats.fqdns as f64 / stats.domains as f64;
        // 234M / 93.5M ≈ 2.51.
        assert!((ratio - 2.51).abs() < 0.35, "{ratio}");
    }
}
