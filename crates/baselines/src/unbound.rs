//! The Unbound comparison setup (§4.2 "Recursive/Caching Resolving").
//!
//! Table 2 runs ZDNS in external mode against a performance-tuned Unbound
//! *on the same machine*. Two effects dominate: Unbound caches everything
//! (including leaf answers, useless for unique-name scans) yet is less CPU
//! efficient than ZDNS's iterative resolver, and the co-located daemon
//! contends for the scanner's cores — capping usable ZDNS threads at
//! 5K (A) / 10K (PTR) in the paper's runs.

use zdns_netsim::{EngineConfig, PublicResolverConfig, PublicResolverSim};

/// The thread cap the paper observed for A lookups through local Unbound.
pub const UNBOUND_THREAD_CAP_A: usize = 5_000;
/// The thread cap for PTR lookups.
pub const UNBOUND_THREAD_CAP_PTR: usize = 10_000;

/// The resolver model for a locally-installed, performance-tuned Unbound.
pub fn unbound_resolver() -> PublicResolverSim {
    PublicResolverSim::new(PublicResolverConfig::local_unbound())
}

/// Engine configuration for scanning through local Unbound: ZDNS's own
/// packet costs plus Unbound's recursion work charged to the same cores.
pub fn unbound_engine_config(threads: usize, ptr: bool, seed: u64) -> EngineConfig {
    let cap = if ptr {
        UNBOUND_THREAD_CAP_PTR
    } else {
        UNBOUND_THREAD_CAP_A
    };
    EngineConfig {
        threads: threads.min(cap),
        // Unbound resolves iteratively on our CPU: several upstream
        // packets' worth of work per client query, less efficiently than
        // ZDNS's own engine.
        local_resolver_cpu_us: 1_400,
        seed,
        ..EngineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zdns_core::{Resolver, ResolverConfig};
    use zdns_netsim::Engine;
    use zdns_wire::{Question, RecordType};
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    #[test]
    fn thread_caps_applied() {
        let cfg = unbound_engine_config(60_000, false, 1);
        assert_eq!(cfg.threads, UNBOUND_THREAD_CAP_A);
        let cfg = unbound_engine_config(60_000, true, 1);
        assert_eq!(cfg.threads, UNBOUND_THREAD_CAP_PTR);
        let cfg = unbound_engine_config(2_000, false, 1);
        assert_eq!(cfg.threads, 2_000);
    }

    #[test]
    fn scanning_through_unbound_works_but_costs_cpu() {
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let local: std::net::Ipv4Addr = "127.0.0.1".parse().unwrap();
        let resolver = Resolver::new(ResolverConfig::external(vec![local]));
        let mut engine = Engine::new(unbound_engine_config(64, false, 5), universe);
        engine.add_resolver(unbound_resolver());
        let r2 = resolver.clone();
        let mut i = 0;
        let report = engine.run(move || {
            if i >= 200 {
                return None;
            }
            i += 1;
            Some(r2.machine(
                Question::new(format!("ub{i}.com").parse().unwrap(), RecordType::A),
                None,
            ))
        });
        assert_eq!(report.jobs, 200);
        assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
    }
}
