//! A behavioural model of MassDNS (§4.2 "Stub Resolver").
//!
//! MassDNS is a high-performance C stub resolver. Its evaluation-relevant
//! behaviours: it blasts RD=1 queries at recursive resolvers with very low
//! per-packet cost, performs **up to 50 retries** on failure with no
//! pacing, and thereby overloads resolvers — the paper measures 35% of
//! responses dropping or SERVFAILing, for 61–67% total success.

use std::net::Ipv4Addr;

use zdns_netsim::{
    ClientEvent, EngineConfig, GcModel, JobOutcome, OutQuery, Protocol, SimClient, SimTime,
    StepStatus, MILLIS,
};
use zdns_wire::{Name, Question, Rcode, RecordType};

/// MassDNS's default retry cap ("performs up to an additional 50 retries").
pub const MASSDNS_RETRIES: u32 = 50;

/// MassDNS's default resend interval: 500 ms. This aggressive re-offer is
/// what keeps resolvers chronically overloaded — each routine offers 2
/// queries/second instead of ZDNS's timeout-paced ~0.3.
pub const MASSDNS_INTERVAL: zdns_netsim::SimTime = 500 * MILLIS;

/// One MassDNS lookup: fire at the resolver, retry hard on any failure.
pub struct MassDnsMachine {
    resolver: Ipv4Addr,
    question: Question,
    attempt: u32,
    tag: u64,
    timeout: SimTime,
}

impl MassDnsMachine {
    /// Build a lookup of `name`/`qtype` against `resolver`.
    pub fn new(resolver: Ipv4Addr, name: Name, qtype: RecordType) -> MassDnsMachine {
        MassDnsMachine {
            resolver,
            question: Question::new(name, qtype),
            attempt: 0,
            tag: 0,
            timeout: MASSDNS_INTERVAL,
        }
    }

    fn send(&mut self, out: &mut Vec<OutQuery>) {
        self.tag += 1;
        out.push(OutQuery {
            to: self.resolver,
            id: (self.tag & 0xFFFF) as u16,
            question: self.question.clone(),
            recursion_desired: true,
            cookie: None,
            protocol: Protocol::Udp,
            timeout: self.timeout,
            tag: self.tag,
        });
    }

    fn retry_or_fail(&mut self, status: &'static str, out: &mut Vec<OutQuery>) -> StepStatus {
        self.attempt += 1;
        if self.attempt <= MASSDNS_RETRIES {
            // No backoff, no pacing: exactly the behaviour the paper
            // cautions about.
            self.send(out);
            StepStatus::Running
        } else {
            StepStatus::Done(JobOutcome {
                success: false,
                status,
            })
        }
    }
}

impl SimClient for MassDnsMachine {
    fn start(&mut self, _now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        self.send(out);
        StepStatus::Running
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        _now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match event {
            ClientEvent::Response { tag, message, .. } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                match message.rcode() {
                    Rcode::NoError | Rcode::NxDomain => StepStatus::Done(JobOutcome {
                        success: true,
                        status: message.rcode().as_str(),
                    }),
                    // SERVFAIL triggers the aggressive retry loop.
                    _ => self.retry_or_fail(message.rcode().as_str(), out),
                }
            }
            ClientEvent::Timeout { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                self.retry_or_fail("TIMEOUT", out)
            }
            ClientEvent::TransportFailed { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                self.retry_or_fail("ERROR", out)
            }
        }
    }
}

/// Engine configuration for a MassDNS run: a lean C event loop — roughly
/// 10× cheaper per packet than the Go framework — and no GC.
pub fn massdns_engine_config(threads: usize, seed: u64) -> EngineConfig {
    EngineConfig {
        threads,
        per_packet_cpu_us: 22,
        gc: None::<GcModel>,
        seed,
        ..EngineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zdns_netsim::{Engine, PublicResolverConfig, PublicResolverSim};
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    #[test]
    fn massdns_overloads_the_resolver() {
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let google: Ipv4Addr = "8.8.8.8".parse().unwrap();
        // Shrink resolver capacity so a small test shows the effect.
        let mut cfg = PublicResolverConfig::google(google);
        cfg.capacity_qps = Some(1_000.0);
        cfg.per_client_qps = None; // isolate the overload path
        cfg.penalty_threshold = 100;
        let mut engine = Engine::new(massdns_engine_config(2_000, 3), universe);
        engine.add_resolver(PublicResolverSim::new(cfg));
        let mut i = 0u64;
        let report = engine.run(move || {
            if i >= 6_000 {
                return None;
            }
            i += 1;
            Some(Box::new(MassDnsMachine::new(
                google,
                format!("md{i}.com").parse().unwrap(),
                RecordType::A,
            )) as Box<dyn SimClient>)
        });
        assert_eq!(report.jobs, 6_000);
        // Blasting 2K concurrent lookups at a 1K qps resolver: massive
        // retry amplification and a visibly degraded success rate.
        assert!(
            report.queries_sent > 10_000,
            "retry amplification expected, sent {}",
            report.queries_sent
        );
        assert!(
            report.success_rate() < 0.9,
            "overload should hurt: {}",
            report.success_rate()
        );
    }

    #[test]
    fn massdns_succeeds_when_unloaded() {
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let google: Ipv4Addr = "8.8.8.8".parse().unwrap();
        let mut engine = Engine::new(massdns_engine_config(8, 4), universe);
        engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::google(google)));
        let mut i = 0u64;
        let report = engine.run(move || {
            if i >= 100 {
                return None;
            }
            i += 1;
            Some(Box::new(MassDnsMachine::new(
                google,
                format!("ok{i}.com").parse().unwrap(),
                RecordType::A,
            )) as Box<dyn SimClient>)
        });
        assert!(report.success_rate() > 0.97, "{}", report.success_rate());
    }
}
