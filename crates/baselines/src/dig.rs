//! A behavioural model of `dig` (§4.2 "Exposed Lookup Chain").
//!
//! dig can expose the lookup chain with `+trace`, but it "was never
//! designed to be a high performance scanning engine": batch mode walks
//! names sequentially in one process with no shared cache, and forking a
//! process per lookup pays process-startup cost for every name. The paper
//! measures ~0.5 traces/s in batch mode and ~120 lookups/s when forking
//! against Cloudflare.

use std::sync::Arc;

use zdns_core::{IterativeMachine, ResolveTarget, ResolverConfig, ResolverCore};
use zdns_netsim::{EngineConfig, SimClient, MILLIS};
use zdns_wire::{Name, Question, RecordType};

/// Build the ZDNS-equivalent of one `dig +trace` invocation: an iterative
/// walk with **no cache** (each dig process starts cold) and tracing on.
pub fn dig_trace_machine(
    root_hints: Vec<(Name, std::net::Ipv4Addr)>,
    name: Name,
    qtype: RecordType,
) -> Box<dyn SimClient> {
    let config = ResolverConfig {
        // A one-entry cache is dig's "no cache": nothing survives between
        // queries of one walk anyway.
        cache_size: 1,
        trace: true,
        retries: 2,
        root_hints,
        ..ResolverConfig::default()
    };
    let core = ResolverCore::new(config);
    Box::new(IterativeMachine::new(
        core,
        Question::new(name, qtype),
        ResolveTarget::Answer,
        None,
    ))
}

/// Engine configuration for dig's *batch* mode (`dig -f names.txt +trace`):
/// one process, strictly sequential lookups, per-query process overhead
/// (fresh sockets, text formatting).
pub fn dig_batch_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        threads: 1,
        // dig tears down and recreates sockets per query and renders text:
        // far more per-packet work than a scanning engine.
        per_packet_cpu_us: 4_000,
        cores: 1,
        gc: None,
        seed,
        stagger: 0,
        ..EngineConfig::default()
    }
}

/// Engine configuration for the *forked* mode (`xargs -P dig`): parallel
/// processes, but every lookup pays fork+exec+linker startup, serialized
/// through the spawning shell — the paper measures ~120/s peak.
pub fn dig_forked_engine_config(parallelism: usize, seed: u64) -> EngineConfig {
    EngineConfig {
        threads: parallelism,
        // ~8ms of CPU per packet event ≈ process startup amortized over
        // the (few) packets one dig sends; one effective core serializes
        // the spawn path.
        per_packet_cpu_us: 8_000,
        cores: 1,
        gc: None,
        seed,
        stagger: 50 * MILLIS,
        ..EngineConfig::default()
    }
}

/// A dig-style external query machine (forked mode against a public
/// resolver): one RD=1 query, up to 2 retries.
pub fn dig_external_machine(
    resolver_addr: std::net::Ipv4Addr,
    name: Name,
    qtype: RecordType,
) -> Box<dyn SimClient> {
    let config = ResolverConfig {
        mode: zdns_core::ResolutionMode::External {
            servers: vec![resolver_addr],
        },
        retries: 2,
        cache_size: 1,
        trace: false,
        ..ResolverConfig::default()
    };
    let core: Arc<ResolverCore> = ResolverCore::new(config);
    Box::new(zdns_core::ExternalMachine::new(
        core,
        Question::new(name, qtype),
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_netsim::Engine;
    use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

    #[test]
    fn dig_trace_resolves_but_never_caches() {
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let hints = universe.root_hints();
        let mut engine = Engine::new(dig_batch_engine_config(1), Arc::clone(&universe) as _);
        let mut i = 0;
        let hints2 = hints.clone();
        let report = engine.run(move || {
            if i >= 30 {
                return None;
            }
            i += 1;
            Some(dig_trace_machine(
                hints2.clone(),
                format!("dig{i}.com").parse().unwrap(),
                RecordType::A,
            ))
        });
        assert_eq!(report.jobs, 30);
        assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
        // No cache sharing: every lookup re-walks from the root, so the
        // per-lookup query count stays at the full chain depth.
        // (A caching resolver would sit near 1; allow a small margin for
        // the exact mix of existing vs NXDOMAIN names in the sampled set.)
        let qpl = report.queries_sent as f64 / report.jobs as f64;
        assert!(qpl >= 2.8, "dig must re-walk every time, qpl {qpl}");
    }

    #[test]
    fn dig_batch_is_sequential_and_slow() {
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let hints = universe.root_hints();
        let mut engine = Engine::new(dig_batch_engine_config(2), Arc::clone(&universe) as _);
        let mut i = 0;
        let report = engine.run(move || {
            if i >= 20 {
                return None;
            }
            i += 1;
            Some(dig_trace_machine(
                hints.clone(),
                format!("slow{i}.net").parse().unwrap(),
                RecordType::A,
            ))
        });
        // Single thread: successes/sec is bounded by the serial walk time.
        let rate = report.jobs as f64 / zdns_netsim::as_secs_f64(report.makespan);
        assert!(rate < 30.0, "batch dig should be slow, got {rate:.1}/s");
    }
}
