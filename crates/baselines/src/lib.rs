//! # zdns-baselines
//!
//! Behavioural models of the tools the ZDNS evaluation compares against
//! (§4.2, Table 2): dig's exposed-lookup-chain tracing (batch and forked),
//! Unbound as a co-located recursive resolver, and MassDNS's blast-and-
//! retry stub resolution. Each model reproduces the *strategy* of the tool
//! against the same simulated Internet, so Table 2 compares strategies
//! rather than testbeds.

#![warn(missing_docs)]

pub mod dig;
pub mod massdns;
pub mod unbound;

pub use dig::{
    dig_batch_engine_config, dig_external_machine, dig_forked_engine_config, dig_trace_machine,
};
pub use massdns::{massdns_engine_config, MassDnsMachine, MASSDNS_RETRIES};
pub use unbound::{
    unbound_engine_config, unbound_resolver, UNBOUND_THREAD_CAP_A, UNBOUND_THREAD_CAP_PTR,
};
