//! Property tests: encode/decode roundtrips and no-panic guarantees.

use proptest::prelude::*;

use zdns_wire::rdata::{Mx, Soa, TxtData};
use zdns_wire::{
    Flags, Message, Name, Question, RData, Rcode, RcodeField, Record, RecordClass, RecordType,
};

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=20)
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..=5)
        .prop_map(|labels| Name::from_labels(labels).expect("bounded labels are valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|b| RData::A(b.into())),
        any::<[u8; 16]>().prop_map(|b| RData::Aaaa(b.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx(Mx {
            preference,
            exchange
        })),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=60), 1..=4)
            .prop_map(|strings| RData::Txt(TxtData { strings })),
        proptest::collection::vec(any::<u8>(), 0..=40).prop_map(RData::Opaque),
    ]
}

fn arb_record() -> impl Strategy<Value = RData> {
    arb_rdata()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn name_text_roundtrip(name in arb_name()) {
        let text = name.to_string();
        let reparsed: Name = text.parse().unwrap();
        prop_assert_eq!(name, reparsed);
    }

    #[test]
    fn name_wire_roundtrip(name in arb_name()) {
        let mut w = zdns_wire::WireWriter::new();
        w.write_name(&name).unwrap();
        let bytes = w.finish();
        let mut r = zdns_wire::WireReader::new(&bytes);
        prop_assert_eq!(r.read_name().unwrap(), name);
    }

    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qname in arb_name(),
        rdatas in proptest::collection::vec(arb_record(), 0..=6),
        rcode_val in 0u16..=20,
    ) {
        let mut msg = Message::query(id, Question::new(qname.clone(), RecordType::A));
        msg.flags = Flags { response: true, ..Flags::default() };
        msg.rcode = RcodeField(Rcode::from_u16(rcode_val));
        for rd in rdatas {
            // Opaque data has no natural type on the wire; pair it with NULL
            // which decodes back to opaque.
            let rec = Record {
                name: qname.clone(),
                rtype: rd.natural_type(),
                class: RecordClass::IN,
                ttl: 300,
                rdata: rd,
            };
            msg.answers.push(rec);
        }
        let bytes = msg.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..=600)) {
        let _ = Message::decode(&bytes);
        let _ = zdns_wire::MessageView::parse(&bytes);
    }

    #[test]
    fn view_decode_equals_owned_decode(
        id in any::<u16>(),
        qname in arb_name(),
        rdatas in proptest::collection::vec(arb_record(), 0..=6),
        rcode_val in 0u16..=20,
    ) {
        let mut msg = Message::query(id, Question::new(qname.clone(), RecordType::A));
        msg.flags = Flags { response: true, ..Flags::default() };
        msg.rcode = RcodeField(Rcode::from_u16(rcode_val));
        for rd in rdatas {
            msg.answers.push(Record {
                name: qname.clone(),
                rtype: rd.natural_type(),
                class: RecordClass::IN,
                ttl: 300,
                rdata: rd,
            });
        }
        let bytes = msg.encode().unwrap();
        let owned = Message::decode(&bytes).unwrap();
        let view = zdns_wire::MessageView::parse(&bytes).unwrap();
        // Header-level accessors agree.
        prop_assert_eq!(view.id(), owned.id);
        prop_assert_eq!(view.flags(), owned.flags);
        prop_assert_eq!(view.rcode(), owned.rcode());
        prop_assert_eq!(view.answer_count(), owned.answers.len());
        // Whole-message promotion is the owned decode.
        prop_assert_eq!(view.to_message().unwrap(), owned.clone());
        // Section-wise promotion matches too.
        let answers: Vec<Record> = view.answers().map(|r| r.to_record().unwrap()).collect();
        prop_assert_eq!(answers, owned.answers.clone());
        let q = view.question().unwrap();
        prop_assert!(q.name.eq_name(&owned.questions[0].name));
        prop_assert_eq!(q.to_question(), owned.questions[0].clone());
    }

    #[test]
    fn scratch_encode_equals_one_shot_encode(
        id in any::<u16>(),
        qname in arb_name(),
        rdatas in proptest::collection::vec(arb_record(), 0..=6),
    ) {
        let mut msg = Message::query(id, Question::new(qname.clone(), RecordType::A));
        msg.flags.response = true;
        for rd in rdatas {
            msg.answers.push(Record {
                name: qname.clone(),
                rtype: rd.natural_type(),
                class: RecordClass::IN,
                ttl: 300,
                rdata: rd,
            });
        }
        let one_shot = msg.encode().unwrap();
        // A reused scratch produces byte-identical messages, even after
        // other messages have passed through it.
        let mut scratch = zdns_wire::ScratchBuf::new();
        msg.encode_into(&mut scratch).unwrap();
        prop_assert_eq!(scratch.message_bytes(), &one_shot[..]);
        let other = Message::query(1, Question::new("warmup.test".parse().unwrap(), RecordType::A));
        other.encode_into(&mut scratch).unwrap();
        msg.encode_into(&mut scratch).unwrap();
        prop_assert_eq!(scratch.message_bytes(), &one_shot[..]);
    }

    #[test]
    fn decode_mutated_valid_message_never_panics(
        qname in arb_name(),
        rdatas in proptest::collection::vec(arb_record(), 0..=4),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let mut msg = Message::query(7, Question::new(qname.clone(), RecordType::ANY));
        for rd in rdatas {
            msg.answers.push(Record {
                name: qname.clone(),
                rtype: rd.natural_type(),
                class: RecordClass::IN,
                ttl: 60,
                rdata: rd,
            });
        }
        let mut bytes = msg.encode().unwrap();
        let idx = flip_at.index(bytes.len());
        bytes[idx] = new_byte;
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn udp_truncation_respects_limit(
        qname in arb_name(),
        count in 1usize..=80,
        limit in 100usize..=1400,
    ) {
        let mut msg = Message::query(9, Question::new(qname.clone(), RecordType::A));
        msg.flags.response = true;
        for i in 0..count {
            msg.answers.push(Record::new(
                qname.clone(),
                300,
                RData::A(std::net::Ipv4Addr::from(0x0A00_0000u32 + i as u32)),
            ));
        }
        let (bytes, truncated) = msg.encode_udp(limit).unwrap();
        let header_question_len = 12 + qname.wire_len() + 4;
        // Unless even the header+question exceed the limit, the datagram fits.
        if header_question_len + 11 < limit {
            prop_assert!(bytes.len() <= limit);
        }
        let decoded = Message::decode(&bytes).unwrap();
        if truncated {
            prop_assert!(decoded.flags.truncated);
            prop_assert!(decoded.answers.len() < count);
        } else {
            prop_assert_eq!(decoded.answers.len(), count);
        }
    }
}
