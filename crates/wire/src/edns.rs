//! EDNS(0) support (RFC 6891).
//!
//! The OPT pseudo-record rides in the additional section and repurposes its
//! fixed fields: CLASS carries the sender's UDP payload size and TTL carries
//! the extended RCODE bits, EDNS version, and the DO flag. ZDNS sends OPT on
//! every query so servers will return large responses over UDP instead of
//! truncating.

use crate::buffer::{WireReader, WireWriter};
use crate::error::WireResult;
use crate::name::Name;
use crate::rtype::RecordType;

/// Default advertised UDP payload size; 1232 avoids IPv6 fragmentation and
/// is the operational consensus from DNS Flag Day 2020.
pub const DEFAULT_UDP_PAYLOAD: u16 = 1232;

/// A decoded OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Sender's maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Upper 8 bits of the extended RCODE.
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC OK flag.
    pub dnssec_ok: bool,
    /// Remaining Z flag bits, preserved verbatim.
    pub z: u16,
    /// EDNS options as (code, data) pairs (e.g. cookies, client subnet).
    pub options: Vec<(u16, Vec<u8>)>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: DEFAULT_UDP_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            z: 0,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// Encode as an OPT record in the additional section.
    pub fn encode(&self, w: &mut WireWriter) -> WireResult<()> {
        w.write_name(&Name::root())?;
        w.write_u16(RecordType::OPT.to_u16())?;
        w.write_u16(self.udp_payload_size)?;
        let mut ttl: u32 = (self.extended_rcode as u32) << 24 | (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        ttl |= (self.z & 0x7FFF) as u32;
        w.write_u32(ttl)?;
        let len_pos = w.len();
        w.write_u16(0)?;
        let start = w.len();
        for (code, data) in &self.options {
            w.write_u16(*code)?;
            w.write_u16(data.len() as u16)?;
            w.write_bytes(data)?;
        }
        let rdlen = w.len() - start;
        w.patch_u16(len_pos, rdlen as u16);
        Ok(())
    }

    /// Decode from the fixed fields and RDATA of an OPT record. The reader
    /// sits just past the TYPE field (i.e. at CLASS).
    pub fn decode_body(r: &mut WireReader<'_>) -> WireResult<Edns> {
        let udp_payload_size = r.read_u16("OPT class")?;
        let ttl = r.read_u32("OPT ttl")?;
        let rdlen = r.read_u16("OPT rdlength")? as usize;
        let end = r.position() + rdlen;
        let mut options = Vec::new();
        while r.position() < end {
            let code = r.read_u16("OPT option code")?;
            let len = r.read_u16("OPT option length")? as usize;
            options.push((code, r.read_bytes(len, "OPT option data")?.to_vec()));
        }
        Ok(Edns {
            udp_payload_size,
            extended_rcode: (ttl >> 24) as u8,
            version: (ttl >> 16) as u8,
            dnssec_ok: ttl & 0x8000 != 0,
            z: (ttl & 0x7FFF) as u16,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &Edns) -> Edns {
        let mut w = WireWriter::new();
        e.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        // Skip root name + TYPE.
        assert_eq!(r.read_name().unwrap(), Name::root());
        assert_eq!(r.read_u16("type").unwrap(), RecordType::OPT.to_u16());
        Edns::decode_body(&mut r).unwrap()
    }

    #[test]
    fn default_roundtrip() {
        let e = Edns::default();
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn extended_rcode_and_do_flag() {
        let e = Edns {
            udp_payload_size: 4096,
            extended_rcode: 1, // with rcode_low=0 => BADVERS (16)
            version: 0,
            dnssec_ok: true,
            z: 0,
            options: Vec::new(),
        };
        let d = roundtrip(&e);
        assert_eq!(d.extended_rcode, 1);
        assert!(d.dnssec_ok);
        assert_eq!(d.udp_payload_size, 4096);
    }

    #[test]
    fn options_roundtrip() {
        let e = Edns {
            options: vec![(10, vec![1, 2, 3, 4, 5, 6, 7, 8])], // DNS cookie
            ..Edns::default()
        };
        assert_eq!(roundtrip(&e).options, e.options);
    }
}
