//! EDNS(0) support (RFC 6891) and DNS cookies (RFC 7873).
//!
//! The OPT pseudo-record rides in the additional section and repurposes its
//! fixed fields: CLASS carries the sender's UDP payload size and TTL carries
//! the extended RCODE bits, EDNS version, and the DO flag. ZDNS sends OPT on
//! every query so servers will return large responses over UDP instead of
//! truncating.
//!
//! DNS cookies are a lightweight off-path-spoofing defence: the client
//! attaches an 8-octet client cookie to every query; a cookie-aware server
//! echoes it back with its own 8–32-octet server cookie appended, and the
//! client echoes the full cookie on subsequent queries (retries included) to
//! the same server. [`Cookie`] is a fixed-size inline value so the hot send
//! path can carry and encode it without heap allocation.

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::WireResult;
use crate::name::Name;
use crate::rtype::RecordType;

/// Default advertised UDP payload size; 1232 avoids IPv6 fragmentation and
/// is the operational consensus from DNS Flag Day 2020.
pub const DEFAULT_UDP_PAYLOAD: u16 = 1232;

/// EDNS option code for DNS cookies (RFC 7873).
pub const OPTION_COOKIE: u16 = 10;

/// Octets of a client cookie.
pub const CLIENT_COOKIE_LEN: usize = 8;
/// Maximum octets of a full cookie (8 client + up to 32 server).
pub const MAX_COOKIE_LEN: usize = 40;

/// A DNS cookie (RFC 7873): the 8-octet client cookie, optionally followed
/// by the 8–32-octet server cookie learned from a response. Stored inline
/// (fixed array) so queries can carry it allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cookie {
    len: u8,
    data: [u8; MAX_COOKIE_LEN],
}

impl Cookie {
    /// A client-only cookie (what the first query to a server carries).
    pub fn client(client: [u8; CLIENT_COOKIE_LEN]) -> Cookie {
        let mut data = [0u8; MAX_COOKIE_LEN];
        data[..CLIENT_COOKIE_LEN].copy_from_slice(&client);
        Cookie {
            len: CLIENT_COOKIE_LEN as u8,
            data,
        }
    }

    /// Parse a cookie option's payload. Valid lengths are exactly 8
    /// (client only) or 16–40 (client + server).
    pub fn from_wire(bytes: &[u8]) -> Option<Cookie> {
        let valid = bytes.len() == CLIENT_COOKIE_LEN
            || (2 * CLIENT_COOKIE_LEN..=MAX_COOKIE_LEN).contains(&bytes.len());
        if !valid {
            return None;
        }
        let mut data = [0u8; MAX_COOKIE_LEN];
        data[..bytes.len()].copy_from_slice(bytes);
        Some(Cookie {
            len: bytes.len() as u8,
            data,
        })
    }

    /// The full cookie as sent on the wire.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }

    /// The 8-octet client part.
    pub fn client_part(&self) -> &[u8] {
        &self.data[..CLIENT_COOKIE_LEN]
    }

    /// The server part, empty for a client-only cookie.
    pub fn server_part(&self) -> &[u8] {
        &self.data[CLIENT_COOKIE_LEN.min(self.len as usize)..self.len as usize]
    }

    /// True once a server cookie has been learned.
    pub fn has_server_part(&self) -> bool {
        self.len as usize > CLIENT_COOKIE_LEN
    }
}

/// A decoded OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Sender's maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Upper 8 bits of the extended RCODE.
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC OK flag.
    pub dnssec_ok: bool,
    /// Remaining Z flag bits, preserved verbatim.
    pub z: u16,
    /// EDNS options as (code, data) pairs (e.g. cookies, client subnet).
    pub options: Vec<(u16, Vec<u8>)>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: DEFAULT_UDP_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            z: 0,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// The DNS cookie riding in this OPT record, if any.
    pub fn cookie(&self) -> Option<Cookie> {
        self.options
            .iter()
            .find(|(code, _)| *code == OPTION_COOKIE)
            .and_then(|(_, data)| Cookie::from_wire(data))
    }

    /// Attach (or replace) the DNS cookie option.
    pub fn set_cookie(&mut self, cookie: Cookie) {
        if let Some(slot) = self
            .options
            .iter_mut()
            .find(|(code, _)| *code == OPTION_COOKIE)
        {
            slot.1 = cookie.as_bytes().to_vec();
        } else {
            self.options
                .push((OPTION_COOKIE, cookie.as_bytes().to_vec()));
        }
    }

    /// Encode as an OPT record in the additional section.
    pub fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name(&Name::root())?;
        w.write_u16(RecordType::OPT.to_u16())?;
        w.write_u16(self.udp_payload_size)?;
        let mut ttl: u32 = (self.extended_rcode as u32) << 24 | (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        ttl |= (self.z & 0x7FFF) as u32;
        w.write_u32(ttl)?;
        let len_pos = w.len();
        w.write_u16(0)?;
        let start = w.len();
        for (code, data) in &self.options {
            w.write_u16(*code)?;
            w.write_u16(data.len() as u16)?;
            w.write_bytes(data)?;
        }
        let rdlen = w.len() - start;
        w.patch_u16(len_pos, rdlen as u16);
        Ok(())
    }

    /// Decode from the fixed fields and RDATA of an OPT record. The reader
    /// sits just past the TYPE field (i.e. at CLASS).
    pub fn decode_body(r: &mut WireReader<'_>) -> WireResult<Edns> {
        let udp_payload_size = r.read_u16("OPT class")?;
        let ttl = r.read_u32("OPT ttl")?;
        let rdlen = r.read_u16("OPT rdlength")? as usize;
        let end = r.position() + rdlen;
        let mut options = Vec::new();
        while r.position() < end {
            let code = r.read_u16("OPT option code")?;
            let len = r.read_u16("OPT option length")? as usize;
            options.push((code, r.read_bytes(len, "OPT option data")?.to_vec()));
        }
        Ok(Edns {
            udp_payload_size,
            extended_rcode: (ttl >> 24) as u8,
            version: (ttl >> 16) as u8,
            dnssec_ok: ttl & 0x8000 != 0,
            z: (ttl & 0x7FFF) as u16,
            options,
        })
    }

    /// Encode a minimal query-side OPT — default flags, optional cookie —
    /// without building an [`Edns`] value. This is the allocation-free path
    /// [`crate::encode_query_into`] uses.
    pub(crate) fn encode_query_opt(w: &mut ScratchBuf, cookie: Option<&Cookie>) -> WireResult<()> {
        w.write_u8(0)?; // root owner name
        w.write_u16(RecordType::OPT.to_u16())?;
        w.write_u16(DEFAULT_UDP_PAYLOAD)?;
        w.write_u32(0)?;
        match cookie {
            Some(c) => {
                let bytes = c.as_bytes();
                w.write_u16(4 + bytes.len() as u16)?;
                w.write_u16(OPTION_COOKIE)?;
                w.write_u16(bytes.len() as u16)?;
                w.write_bytes(bytes)
            }
            None => w.write_u16(0),
        }
    }
}

/// Append one COOKIE option (code, length, cookie octets) to a message
/// whose OPT pseudo-record is the final thing in the buffer. The caller
/// patches the OPT RDLENGTH afterwards — [`cookie_option_len`] is the
/// delta to add. This is the splice the serve-path packet cache uses to
/// graft a per-client cookie onto a pre-encoded, cookie-less response.
pub fn write_cookie_option(w: &mut ScratchBuf, cookie: &Cookie) -> WireResult<()> {
    let bytes = cookie.as_bytes();
    w.write_u16(OPTION_COOKIE)?;
    w.write_u16(bytes.len() as u16)?;
    w.write_bytes(bytes)
}

/// Wire size of the option [`write_cookie_option`] appends: 4 octets of
/// code + length, then the cookie itself.
pub fn cookie_option_len(cookie: &Cookie) -> usize {
    4 + cookie.as_bytes().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;

    fn roundtrip(e: &Edns) -> Edns {
        let mut w = WireWriter::new();
        e.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        // Skip root name + TYPE.
        assert_eq!(r.read_name().unwrap(), Name::root());
        assert_eq!(r.read_u16("type").unwrap(), RecordType::OPT.to_u16());
        Edns::decode_body(&mut r).unwrap()
    }

    #[test]
    fn default_roundtrip() {
        let e = Edns::default();
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn extended_rcode_and_do_flag() {
        let e = Edns {
            udp_payload_size: 4096,
            extended_rcode: 1, // with rcode_low=0 => BADVERS (16)
            version: 0,
            dnssec_ok: true,
            z: 0,
            options: Vec::new(),
        };
        let d = roundtrip(&e);
        assert_eq!(d.extended_rcode, 1);
        assert!(d.dnssec_ok);
        assert_eq!(d.udp_payload_size, 4096);
    }

    #[test]
    fn options_roundtrip() {
        let e = Edns {
            options: vec![(10, vec![1, 2, 3, 4, 5, 6, 7, 8])], // DNS cookie
            ..Edns::default()
        };
        assert_eq!(roundtrip(&e).options, e.options);
    }

    #[test]
    fn cookie_client_only() {
        let c = Cookie::client([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.client_part(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(c.server_part().is_empty());
        assert!(!c.has_server_part());
    }

    #[test]
    fn cookie_wire_lengths() {
        assert!(Cookie::from_wire(&[0u8; 8]).is_some());
        assert!(Cookie::from_wire(&[0u8; 16]).is_some());
        assert!(Cookie::from_wire(&[0u8; 40]).is_some());
        // Invalid per RFC 7873: too short, between 9 and 15, too long.
        assert!(Cookie::from_wire(&[0u8; 7]).is_none());
        assert!(Cookie::from_wire(&[0u8; 12]).is_none());
        assert!(Cookie::from_wire(&[0u8; 41]).is_none());
    }

    #[test]
    fn cookie_roundtrips_through_edns_option() {
        let mut full = [0u8; 24];
        for (i, b) in full.iter_mut().enumerate() {
            *b = i as u8;
        }
        let cookie = Cookie::from_wire(&full).unwrap();
        assert!(cookie.has_server_part());
        assert_eq!(cookie.server_part().len(), 16);
        let mut e = Edns::default();
        e.set_cookie(cookie);
        let decoded = roundtrip(&e);
        assert_eq!(decoded.cookie(), Some(cookie));
        // Replacing keeps a single option.
        e.set_cookie(Cookie::client([9; 8]));
        assert_eq!(e.options.len(), 1);
        assert_eq!(e.cookie().unwrap().client_part(), &[9u8; 8]);
    }
}
