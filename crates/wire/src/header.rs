//! Message header: id, flags, opcode, response code, section counts.

use serde::{Deserialize, Serialize};

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::WireResult;

/// DNS opcodes (RFC 1035 §4.1.1 plus updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Anything else seen on the wire.
    Unknown(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0F,
        }
    }

    /// Decode the 4-bit wire value.
    pub fn from_u8(v: u8) -> Opcode {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response codes, including EDNS-extended values (RFC 6895).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Query could not be parsed by the server.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Query type not implemented.
    NotImp,
    /// Refused for policy reasons.
    Refused,
    /// Name exists when it should not (RFC 2136).
    YxDomain,
    /// RRset exists when it should not (RFC 2136).
    YxRrset,
    /// RRset that should exist does not (RFC 2136).
    NxRrset,
    /// Server not authoritative / not authorized (RFC 2136/2845).
    NotAuth,
    /// Name not contained in zone (RFC 2136).
    NotZone,
    /// Bad EDNS version (RFC 6891) / TSIG signature failure (RFC 8945).
    BadVers,
    /// Any other (possibly extended) value.
    Unknown(u16),
}

impl Rcode {
    /// Full (possibly >4-bit) value; values above 15 need an OPT record.
    pub fn to_u16(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::YxDomain => 6,
            Rcode::YxRrset => 7,
            Rcode::NxRrset => 8,
            Rcode::NotAuth => 9,
            Rcode::NotZone => 10,
            Rcode::BadVers => 16,
            Rcode::Unknown(v) => v,
        }
    }

    /// Decode from a full value.
    pub fn from_u16(v: u16) -> Rcode {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            6 => Rcode::YxDomain,
            7 => Rcode::YxRrset,
            8 => Rcode::NxRrset,
            9 => Rcode::NotAuth,
            10 => Rcode::NotZone,
            16 => Rcode::BadVers,
            other => Rcode::Unknown(other),
        }
    }

    /// The ZDNS status string for this rcode (`NOERROR`, `NXDOMAIN`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
            Rcode::YxDomain => "YXDOMAIN",
            Rcode::YxRrset => "YXRRSET",
            Rcode::NxRrset => "NXRRSET",
            Rcode::NotAuth => "NOTAUTH",
            Rcode::NotZone => "NOTZONE",
            Rcode::BadVers => "BADVERS",
            Rcode::Unknown(_) => "UNKNOWN",
        }
    }
}

/// Decoded header flags, named as ZDNS reports them in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// QR: this message is a response.
    pub response: bool,
    /// Opcode (4 bits).
    #[serde(skip)]
    pub opcode: OpcodeField,
    /// AA: the answer is authoritative.
    pub authoritative: bool,
    /// TC: the response was truncated (retry over TCP).
    pub truncated: bool,
    /// RD: recursion desired.
    pub recursion_desired: bool,
    /// RA: recursion available.
    pub recursion_available: bool,
    /// AD: data authenticated by DNSSEC (RFC 4035).
    pub authenticated: bool,
    /// CD: DNSSEC checking disabled.
    pub checking_disabled: bool,
    /// Z: the reserved bit; kept so fuzzed messages round-trip.
    #[serde(skip)]
    pub zero: bool,
}

impl Flags {
    /// Pack into the two wire octets (bytes 2–3 of the header), combined
    /// with the low 4 bits of the response code. [`Header::encode`] uses
    /// this; so does the serve-path packet cache, which patches the flag
    /// bytes of a pre-encoded response in place instead of re-encoding.
    pub fn pack(&self, rcode_low: u8) -> [u8; 2] {
        let mut hi: u8 = 0;
        if self.response {
            hi |= 0x80;
        }
        hi |= self.opcode.0.to_u8() << 3;
        if self.authoritative {
            hi |= 0x04;
        }
        if self.truncated {
            hi |= 0x02;
        }
        if self.recursion_desired {
            hi |= 0x01;
        }
        let mut lo: u8 = 0;
        if self.recursion_available {
            lo |= 0x80;
        }
        if self.zero {
            lo |= 0x40;
        }
        if self.authenticated {
            lo |= 0x20;
        }
        if self.checking_disabled {
            lo |= 0x10;
        }
        lo |= rcode_low & 0x0F;
        [hi, lo]
    }
}

/// Wrapper so `Flags` can derive `Default` with `Opcode::Query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcodeField(pub Opcode);

impl Default for OpcodeField {
    fn default() -> Self {
        OpcodeField(Opcode::Query)
    }
}

/// The fixed 12-octet message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Decoded flag bits.
    pub flags: Flags,
    /// 4-bit response code (the low bits; EDNS may extend it).
    pub rcode_low: u8,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Header {
    /// Encode the header.
    pub fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.id)?;
        let [hi, lo] = self.flags.pack(self.rcode_low);
        w.write_u8(hi)?;
        w.write_u8(lo)?;
        w.write_u16(self.qdcount)?;
        w.write_u16(self.ancount)?;
        w.write_u16(self.nscount)?;
        w.write_u16(self.arcount)
    }

    /// Decode the header.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Header> {
        let id = r.read_u16("header id")?;
        let hi = r.read_u8("header flags")?;
        let lo = r.read_u8("header flags")?;
        let flags = Flags {
            response: hi & 0x80 != 0,
            opcode: OpcodeField(Opcode::from_u8((hi >> 3) & 0x0F)),
            authoritative: hi & 0x04 != 0,
            truncated: hi & 0x02 != 0,
            recursion_desired: hi & 0x01 != 0,
            recursion_available: lo & 0x80 != 0,
            zero: lo & 0x40 != 0,
            authenticated: lo & 0x20 != 0,
            checking_disabled: lo & 0x10 != 0,
        };
        Ok(Header {
            id,
            flags,
            rcode_low: lo & 0x0F,
            qdcount: r.read_u16("qdcount")?,
            ancount: r.read_u16("ancount")?,
            nscount: r.read_u16("nscount")?,
            arcount: r.read_u16("arcount")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            id: 0xBEEF,
            flags: Flags {
                response: true,
                opcode: OpcodeField(Opcode::Query),
                authoritative: true,
                truncated: false,
                recursion_desired: true,
                recursion_available: true,
                authenticated: false,
                checking_disabled: true,
                zero: false,
            },
            rcode_low: 3,
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.finish();
        assert_eq!(bytes.len(), 12);
        let mut r = WireReader::new(&bytes);
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for v in 0..=15u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn rcode_strings() {
        assert_eq!(Rcode::NoError.as_str(), "NOERROR");
        assert_eq!(Rcode::NxDomain.as_str(), "NXDOMAIN");
        assert_eq!(Rcode::from_u16(2), Rcode::ServFail);
        assert_eq!(Rcode::from_u16(4242), Rcode::Unknown(4242));
        assert_eq!(Rcode::Unknown(4242).to_u16(), 4242);
    }

    #[test]
    fn pack_matches_encode_for_every_flag_combination() {
        for bits in 0..=0xFFu16 {
            let flags = Flags {
                response: bits & 1 != 0,
                opcode: OpcodeField(Opcode::from_u8(((bits >> 1) & 0x03) as u8)),
                authoritative: bits & 0x04 != 0,
                truncated: bits & 0x08 != 0,
                recursion_desired: bits & 0x10 != 0,
                recursion_available: bits & 0x20 != 0,
                authenticated: bits & 0x40 != 0,
                checking_disabled: bits & 0x80 != 0,
                zero: bits & 0x100 != 0,
            };
            let rcode_low = (bits % 16) as u8;
            let h = Header {
                id: 0,
                flags,
                rcode_low,
                ..Header::default()
            };
            let mut w = WireWriter::new();
            h.encode(&mut w).unwrap();
            let bytes = w.finish();
            assert_eq!(flags.pack(rcode_low), [bytes[2], bytes[3]]);
        }
    }

    #[test]
    fn zero_bit_preserved() {
        let mut h = Header::default();
        h.flags.zero = true;
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(Header::decode(&mut r).unwrap().flags.zero);
    }
}
