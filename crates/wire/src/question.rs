//! The question section entry.

use serde::{Deserialize, Serialize};

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::WireResult;
use crate::name::Name;
use crate::rtype::{RecordClass, RecordType};

/// A DNS question: name, QTYPE, QCLASS.
///
/// This mirrors the `miekg.Question` the paper's example module constructs:
/// `Question{Name, Type, Class}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Name being queried.
    pub name: Name,
    /// Query type.
    #[serde(rename = "type")]
    pub qtype: RecordType,
    /// Query class (almost always IN; CH for `version.bind`).
    pub qclass: RecordClass,
}

impl Question {
    /// Convenience constructor for the common IN-class case.
    pub fn new(name: Name, qtype: RecordType) -> Self {
        Question {
            name,
            qtype,
            qclass: RecordClass::IN,
        }
    }

    /// Encode into a message body.
    pub fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name(&self.name)?;
        w.write_u16(self.qtype.to_u16())?;
        w.write_u16(self.qclass.to_u16())
    }

    /// Decode from a message body.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Question> {
        let name = r.read_name()?;
        let qtype = RecordType::from_u16(r.read_u16("question type")?);
        let qclass = RecordClass::from_u16(r.read_u16("question class")?);
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;

    #[test]
    fn question_roundtrip() {
        let q = Question::new("example.com".parse().unwrap(), RecordType::MX);
        let mut w = WireWriter::new();
        q.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Question::decode(&mut r).unwrap(), q);
        assert!(r.is_empty());
    }

    #[test]
    fn chaos_class_question() {
        let q = Question {
            name: "version.bind".parse().unwrap(),
            qtype: RecordType::TXT,
            qclass: RecordClass::CH,
        };
        let mut w = WireWriter::new();
        q.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = Question::decode(&mut r).unwrap();
        assert_eq!(decoded.qclass, RecordClass::CH);
    }
}
