//! DNSSEC record bodies and the NSEC-style type bitmap.

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::rtype::RecordType;

/// The windowed type bitmap used by NSEC, NSEC3, and CSYNC (RFC 4034 §4.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeBitmap {
    /// The types present, kept sorted and deduplicated.
    types: Vec<RecordType>,
}

impl TypeBitmap {
    /// Build from a list of types.
    pub fn from_types<I: IntoIterator<Item = RecordType>>(types: I) -> TypeBitmap {
        let mut v: Vec<u16> = types.into_iter().map(|t| t.to_u16()).collect();
        v.sort_unstable();
        v.dedup();
        TypeBitmap {
            types: v.into_iter().map(RecordType::from_u16).collect(),
        }
    }

    /// The contained types, ascending by numeric value.
    pub fn types(&self) -> &[RecordType] {
        &self.types
    }

    /// Membership test.
    pub fn contains(&self, t: RecordType) -> bool {
        self.types
            .binary_search_by_key(&t.to_u16(), |x| x.to_u16())
            .is_ok()
    }

    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        // Group types by 256-wide windows.
        let mut idx = 0;
        while idx < self.types.len() {
            let window = (self.types[idx].to_u16() >> 8) as u8;
            let mut bitmap = [0u8; 32];
            let mut max_byte = 0usize;
            while idx < self.types.len() && (self.types[idx].to_u16() >> 8) as u8 == window {
                let low = (self.types[idx].to_u16() & 0xFF) as usize;
                bitmap[low / 8] |= 0x80 >> (low % 8);
                max_byte = max_byte.max(low / 8);
                idx += 1;
            }
            w.write_u8(window)?;
            w.write_u8((max_byte + 1) as u8)?;
            w.write_bytes(&bitmap[..=max_byte])?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<TypeBitmap> {
        let mut types = Vec::new();
        let mut last_window: Option<u8> = None;
        while r.position() < end {
            let window = r.read_u8("bitmap window")?;
            if let Some(prev) = last_window {
                // Windows must be ascending; repeats indicate corruption.
                if window <= prev {
                    return Err(WireError::InvalidValue {
                        field: "bitmap window order",
                    });
                }
            }
            last_window = Some(window);
            let len = r.read_u8("bitmap length")? as usize;
            if len == 0 || len > 32 {
                return Err(WireError::InvalidValue {
                    field: "bitmap length",
                });
            }
            let bytes = r.read_bytes(len, "bitmap data")?;
            for (byte_idx, &b) in bytes.iter().enumerate() {
                for bit in 0..8 {
                    if b & (0x80 >> bit) != 0 {
                        let value = (window as u16) << 8 | (byte_idx * 8 + bit) as u16;
                        types.push(RecordType::from_u16(value));
                    }
                }
            }
        }
        Ok(TypeBitmap { types })
    }
}

/// DS / CDS: delegation signer digest (RFC 4034 §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ds {
    /// Key tag of the referenced DNSKEY.
    pub key_tag: u16,
    /// DNSSEC algorithm number.
    pub algorithm: u8,
    /// Digest algorithm (1=SHA-1, 2=SHA-256, ...).
    pub digest_type: u8,
    /// The digest bytes.
    pub digest: Vec<u8>,
}

impl Ds {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.key_tag)?;
        w.write_u8(self.algorithm)?;
        w.write_u8(self.digest_type)?;
        w.write_bytes(&self.digest)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Ds> {
        let key_tag = r.read_u16("DS key tag")?;
        let algorithm = r.read_u8("DS algorithm")?;
        let digest_type = r.read_u8("DS digest type")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Ds {
            key_tag,
            algorithm,
            digest_type,
            digest: r.read_bytes(remaining, "DS digest")?.to_vec(),
        })
    }
}

/// DNSKEY / CDNSKEY / legacy KEY: a public key (RFC 4034 §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnskey {
    /// Flags (bit 7 = zone key, bit 15 = SEP).
    pub flags: u16,
    /// Always 3 for DNSSEC.
    pub protocol: u8,
    /// DNSSEC algorithm number.
    pub algorithm: u8,
    /// Public key bytes.
    pub public_key: Vec<u8>,
}

impl Dnskey {
    /// RFC 4034 Appendix B key tag.
    pub fn key_tag(&self) -> u16 {
        let mut rdata = Vec::with_capacity(4 + self.public_key.len());
        rdata.extend_from_slice(&self.flags.to_be_bytes());
        rdata.push(self.protocol);
        rdata.push(self.algorithm);
        rdata.extend_from_slice(&self.public_key);
        let mut acc: u32 = 0;
        for (i, &b) in rdata.iter().enumerate() {
            acc += if i % 2 == 0 {
                (b as u32) << 8
            } else {
                b as u32
            };
        }
        acc += (acc >> 16) & 0xFFFF;
        (acc & 0xFFFF) as u16
    }

    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.flags)?;
        w.write_u8(self.protocol)?;
        w.write_u8(self.algorithm)?;
        w.write_bytes(&self.public_key)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Dnskey> {
        let flags = r.read_u16("DNSKEY flags")?;
        let protocol = r.read_u8("DNSKEY protocol")?;
        let algorithm = r.read_u8("DNSKEY algorithm")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Dnskey {
            flags,
            protocol,
            algorithm,
            public_key: r.read_bytes(remaining, "DNSKEY key")?.to_vec(),
        })
    }
}

/// RRSIG: a signature over an RRset (RFC 4034 §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rrsig {
    /// Type of the covered RRset.
    pub type_covered: RecordType,
    /// DNSSEC algorithm number.
    pub algorithm: u8,
    /// Labels in the owner name (wildcard detection).
    pub labels: u8,
    /// TTL of the covered RRset at signing time.
    pub original_ttl: u32,
    /// Signature expiration (UNIX seconds).
    pub expiration: u32,
    /// Signature inception (UNIX seconds).
    pub inception: u32,
    /// Key tag of the signing DNSKEY.
    pub key_tag: u16,
    /// Name of the signing zone.
    pub signer: Name,
    /// Signature bytes.
    pub signature: Vec<u8>,
}

impl Rrsig {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.type_covered.to_u16())?;
        w.write_u8(self.algorithm)?;
        w.write_u8(self.labels)?;
        w.write_u32(self.original_ttl)?;
        w.write_u32(self.expiration)?;
        w.write_u32(self.inception)?;
        w.write_u16(self.key_tag)?;
        // RFC 4034 §3.1.7: signer name MUST NOT be compressed.
        w.write_name_uncompressed(&self.signer)?;
        w.write_bytes(&self.signature)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Rrsig> {
        let type_covered = RecordType::from_u16(r.read_u16("RRSIG type covered")?);
        let algorithm = r.read_u8("RRSIG algorithm")?;
        let labels = r.read_u8("RRSIG labels")?;
        let original_ttl = r.read_u32("RRSIG original ttl")?;
        let expiration = r.read_u32("RRSIG expiration")?;
        let inception = r.read_u32("RRSIG inception")?;
        let key_tag = r.read_u16("RRSIG key tag")?;
        let signer = r.read_name()?;
        let remaining = end.saturating_sub(r.position());
        Ok(Rrsig {
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            signature: r.read_bytes(remaining, "RRSIG signature")?.to_vec(),
        })
    }
}

/// NSEC: next secure name + type bitmap (RFC 4034 §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec {
    /// Next owner name in canonical zone order.
    pub next: Name,
    /// Types present at this owner name.
    pub types: TypeBitmap,
}

impl Nsec {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name_uncompressed(&self.next)?;
        self.types.encode(w)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Nsec> {
        Ok(Nsec {
            next: r.read_name()?,
            types: TypeBitmap::decode(r, end)?,
        })
    }
}

/// NSEC3: hashed denial of existence (RFC 5155).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3 {
    /// Hash algorithm (1 = SHA-1).
    pub algorithm: u8,
    /// Flags (bit 0 = opt-out).
    pub flags: u8,
    /// Additional hash iterations.
    pub iterations: u16,
    /// Salt (empty allowed).
    pub salt: Vec<u8>,
    /// Hash of the next owner name.
    pub next_hashed: Vec<u8>,
    /// Types present at the original owner name.
    pub types: TypeBitmap,
}

impl Nsec3 {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.algorithm)?;
        w.write_u8(self.flags)?;
        w.write_u16(self.iterations)?;
        w.write_char_string(&self.salt)?;
        w.write_char_string(&self.next_hashed)?;
        self.types.encode(w)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Nsec3> {
        Ok(Nsec3 {
            algorithm: r.read_u8("NSEC3 algorithm")?,
            flags: r.read_u8("NSEC3 flags")?,
            iterations: r.read_u16("NSEC3 iterations")?,
            salt: r.read_char_string("NSEC3 salt")?,
            next_hashed: r.read_char_string("NSEC3 next hash")?,
            types: TypeBitmap::decode(r, end)?,
        })
    }
}

/// NSEC3PARAM: zone-wide NSEC3 parameters (RFC 5155 §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3Param {
    /// Hash algorithm.
    pub algorithm: u8,
    /// Flags (must be 0 here).
    pub flags: u8,
    /// Additional hash iterations.
    pub iterations: u16,
    /// Salt.
    pub salt: Vec<u8>,
}

impl Nsec3Param {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.algorithm)?;
        w.write_u8(self.flags)?;
        w.write_u16(self.iterations)?;
        w.write_char_string(&self.salt)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Nsec3Param> {
        Ok(Nsec3Param {
            algorithm: r.read_u8("NSEC3PARAM algorithm")?,
            flags: r.read_u8("NSEC3PARAM flags")?,
            iterations: r.read_u16("NSEC3PARAM iterations")?,
            salt: r.read_char_string("NSEC3PARAM salt")?,
        })
    }
}

/// CSYNC: child-to-parent synchronization (RFC 7477).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csync {
    /// SOA serial this applies from.
    pub serial: u32,
    /// Flags (bit 0 = immediate, bit 1 = soaminimum).
    pub flags: u16,
    /// Types to synchronize.
    pub types: TypeBitmap,
}

impl Csync {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u32(self.serial)?;
        w.write_u16(self.flags)?;
        self.types.encode(w)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Csync> {
        Ok(Csync {
            serial: r.read_u32("CSYNC serial")?,
            flags: r.read_u16("CSYNC flags")?,
            types: TypeBitmap::decode(r, end)?,
        })
    }
}

/// NXT: obsolete predecessor of NSEC (RFC 2535 §5). The bitmap is the raw
/// pre-windowed format, kept as bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nxt {
    /// Next name in the zone.
    pub next: Name,
    /// Raw type bitmap (types 0-127).
    pub bitmap: Vec<u8>,
}

impl Nxt {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name_uncompressed(&self.next)?;
        w.write_bytes(&self.bitmap)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Nxt> {
        let next = r.read_name()?;
        let remaining = end.saturating_sub(r.position());
        Ok(Nxt {
            next,
            bitmap: r.read_bytes(remaining, "NXT bitmap")?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;
    use crate::rdata::RData;

    fn roundtrip(rtype: RecordType, rdata: &RData) {
        let mut w = WireWriter::new();
        rdata.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(&RData::decode(rtype, bytes.len(), &mut r).unwrap(), rdata);
    }

    #[test]
    fn type_bitmap_roundtrip_multi_window() {
        // Types spanning window 0 (A=1, MX=15) and window 1 (CAA=257).
        let bm = TypeBitmap::from_types([RecordType::CAA, RecordType::A, RecordType::MX]);
        assert!(bm.contains(RecordType::A));
        assert!(bm.contains(RecordType::CAA));
        assert!(!bm.contains(RecordType::NS));
        let mut w = WireWriter::new();
        bm.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = TypeBitmap::decode(&mut r, bytes.len()).unwrap();
        assert_eq!(decoded, bm);
    }

    #[test]
    fn type_bitmap_dedups() {
        let bm = TypeBitmap::from_types([RecordType::A, RecordType::A]);
        assert_eq!(bm.types().len(), 1);
    }

    #[test]
    fn bitmap_window_order_enforced() {
        // Two window-0 blocks in a row is malformed.
        let bytes = [0u8, 1, 0x40, 0, 1, 0x40];
        let mut r = WireReader::new(&bytes);
        assert!(TypeBitmap::decode(&mut r, bytes.len()).is_err());
    }

    #[test]
    fn bitmap_zero_length_rejected() {
        let bytes = [0u8, 0];
        let mut r = WireReader::new(&bytes);
        assert!(TypeBitmap::decode(&mut r, bytes.len()).is_err());
    }

    #[test]
    fn ds_roundtrip() {
        roundtrip(
            RecordType::DS,
            &RData::Ds(Ds {
                key_tag: 30909,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0xE2, 0xD3, 0xC9, 0x16],
            }),
        );
    }

    #[test]
    fn dnskey_roundtrip_and_key_tag() {
        let key = Dnskey {
            flags: 257,
            protocol: 3,
            algorithm: 8,
            public_key: vec![3, 1, 0, 1, 0xAB, 0xCD],
        };
        let tag = key.key_tag();
        roundtrip(RecordType::DNSKEY, &RData::Dnskey(key.clone()));
        // Key tag must be deterministic.
        assert_eq!(tag, key.key_tag());
    }

    #[test]
    fn rrsig_roundtrip() {
        roundtrip(
            RecordType::RRSIG,
            &RData::Rrsig(Rrsig {
                type_covered: RecordType::NS,
                algorithm: 8,
                labels: 0,
                original_ttl: 518400,
                expiration: 1653930000,
                inception: 1652810400,
                key_tag: 47671,
                signer: Name::root(),
                signature: vec![0x41, 0xA5, 0x56, 0xE6],
            }),
        );
    }

    #[test]
    fn nsec_roundtrip() {
        roundtrip(
            RecordType::NSEC,
            &RData::Nsec(Nsec {
                next: "b.example.com".parse().unwrap(),
                types: TypeBitmap::from_types([
                    RecordType::NS,
                    RecordType::SOA,
                    RecordType::RRSIG,
                    RecordType::DNSKEY,
                    RecordType::NSEC3PARAM,
                ]),
            }),
        );
    }

    #[test]
    fn nsec3_roundtrip() {
        roundtrip(
            RecordType::NSEC3,
            &RData::Nsec3(Nsec3 {
                algorithm: 1,
                flags: 1,
                iterations: 0,
                salt: Vec::new(),
                next_hashed: vec![0xAA; 20],
                types: TypeBitmap::from_types([RecordType::NS, RecordType::DS]),
            }),
        );
    }

    #[test]
    fn nsec3param_roundtrip() {
        roundtrip(
            RecordType::NSEC3PARAM,
            &RData::Nsec3Param(Nsec3Param {
                algorithm: 1,
                flags: 0,
                iterations: 10,
                salt: vec![0xDE, 0xAD],
            }),
        );
    }

    #[test]
    fn csync_roundtrip() {
        roundtrip(
            RecordType::CSYNC,
            &RData::Csync(Csync {
                serial: 2022,
                flags: 3,
                types: TypeBitmap::from_types([RecordType::A, RecordType::NS]),
            }),
        );
    }

    #[test]
    fn nxt_roundtrip() {
        roundtrip(
            RecordType::NXT,
            &RData::Nxt(Nxt {
                next: "next.example".parse().unwrap(),
                bitmap: vec![0b0110_0000],
            }),
        );
    }
}
