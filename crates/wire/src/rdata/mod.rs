//! Typed RDATA for every record type ZDNS supports.
//!
//! Decoding is lenient where the DNS is lenient (unknown types become
//! [`RData::Opaque`]) and strict where structure matters (declared RDLENGTH
//! must match what the typed codec consumes). Names inside RDATA are decoded
//! with full compression-pointer support — real servers compress NS/CNAME/
//! SOA/MX targets — but are always encoded uncompressed, which is valid for
//! every type and required for modern ones (RFC 3597 §4).

mod basic;
mod dnssec;
mod misc;

pub use basic::{Afsdb, Kx, Mx, Naptr, Px, Rp, Rt, Soa, Srv, Talink, TxtData};
pub use dnssec::{Csync, Dnskey, Ds, Nsec, Nsec3, Nsec3Param, Nxt, Rrsig, TypeBitmap};
pub use misc::{
    Caa, CertRec, Gpos, Hinfo, Hip, Isdn, Loc, Lp, Nid, Sshfp, Svcb, Tkey, Tlsa, Uri, L32, L64,
};

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::rtype::RecordType;

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 host address.
    A(Ipv4Addr),
    /// IPv6 host address.
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(Name),
    /// Canonical name (alias).
    Cname(Name),
    /// Delegation name (subtree alias).
    Dname(Name),
    /// Domain name pointer (reverse DNS).
    Ptr(Name),
    /// Mailbox (obsolete).
    Mb(Name),
    /// Mail destination (obsolete).
    Md(Name),
    /// Mail forwarder (obsolete).
    Mf(Name),
    /// Mail group member (obsolete).
    Mg(Name),
    /// Mail rename (obsolete).
    Mr(Name),
    /// NSAP pointer (obsolete).
    NsapPtr(Name),
    /// Start of authority.
    Soa(Soa),
    /// Mail exchange.
    Mx(Mx),
    /// Text strings.
    Txt(TxtData),
    /// Sender Policy Framework (deprecated duplicate of TXT).
    Spf(TxtData),
    /// Application visibility and control.
    Avc(TxtData),
    /// Node information (experimental, TXT-shaped).
    Ninfo(TxtData),
    /// Service locator.
    Srv(Srv),
    /// Naming authority pointer.
    Naptr(Naptr),
    /// Responsible person.
    Rp(Rp),
    /// AFS database location.
    Afsdb(Afsdb),
    /// X.400 mapping.
    Px(Px),
    /// Key exchanger.
    Kx(Kx),
    /// Route through (obsolete).
    Rt(Rt),
    /// Trust anchor link.
    Talink(Talink),
    /// Delegation signer (also CDS).
    Ds(Ds),
    /// Child delegation signer.
    Cds(Ds),
    /// DNSSEC public key (also CDNSKEY, legacy KEY).
    Dnskey(Dnskey),
    /// Child DNSKEY.
    Cdnskey(Dnskey),
    /// Legacy KEY record (RFC 2535).
    Key(Dnskey),
    /// DNSSEC signature.
    Rrsig(Rrsig),
    /// Authenticated denial of existence.
    Nsec(Nsec),
    /// Hashed authenticated denial.
    Nsec3(Nsec3),
    /// NSEC3 parameters.
    Nsec3Param(Nsec3Param),
    /// Child-to-parent synchronization.
    Csync(Csync),
    /// Legacy denial of existence (RFC 2535, obsolete).
    Nxt(Nxt),
    /// Host information.
    Hinfo(Hinfo),
    /// ISDN address (obsolete).
    Isdn(Isdn),
    /// Geographic position (obsolete).
    Gpos(Gpos),
    /// Location information.
    Loc(Loc),
    /// Uniform resource identifier.
    Uri(Uri),
    /// Certification authority authorization.
    Caa(Caa),
    /// Certificate.
    Cert(CertRec),
    /// SSH key fingerprint.
    Sshfp(Sshfp),
    /// TLSA certificate association.
    Tlsa(Tlsa),
    /// S/MIME certificate association.
    Smimea(Tlsa),
    /// Host identity protocol.
    Hip(Hip),
    /// Transaction key.
    Tkey(Tkey),
    /// Service binding.
    Svcb(Svcb),
    /// HTTPS service binding.
    Https(Svcb),
    /// ILNP 32-bit locator.
    L32(L32),
    /// ILNP 64-bit locator.
    L64(L64),
    /// ILNP node identifier.
    Nid(Nid),
    /// ILNP locator pointer.
    Lp(Lp),
    /// EUI-48 address.
    Eui48([u8; 6]),
    /// EUI-64 address.
    Eui64([u8; 8]),
    /// Raw bytes for types without internal structure (NULL, EID, ATMA,
    /// DHCID, OPENPGPKEY, UINFO, UID, GID, UNSPEC) and for unknown types.
    Opaque(Vec<u8>),
}

impl RData {
    /// The record type this data belongs with. For [`RData::Opaque`] this is
    /// unknowable from the data alone, so the record carries the type; this
    /// returns the natural type for typed variants and `NULL` for opaque.
    pub fn natural_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::AAAA,
            RData::Ns(_) => RecordType::NS,
            RData::Cname(_) => RecordType::CNAME,
            RData::Dname(_) => RecordType::DNAME,
            RData::Ptr(_) => RecordType::PTR,
            RData::Mb(_) => RecordType::MB,
            RData::Md(_) => RecordType::MD,
            RData::Mf(_) => RecordType::MF,
            RData::Mg(_) => RecordType::MG,
            RData::Mr(_) => RecordType::MR,
            RData::NsapPtr(_) => RecordType::NSAPPTR,
            RData::Soa(_) => RecordType::SOA,
            RData::Mx(_) => RecordType::MX,
            RData::Txt(_) => RecordType::TXT,
            RData::Spf(_) => RecordType::SPF,
            RData::Avc(_) => RecordType::AVC,
            RData::Ninfo(_) => RecordType::NINFO,
            RData::Srv(_) => RecordType::SRV,
            RData::Naptr(_) => RecordType::NAPTR,
            RData::Rp(_) => RecordType::RP,
            RData::Afsdb(_) => RecordType::AFSDB,
            RData::Px(_) => RecordType::PX,
            RData::Kx(_) => RecordType::KX,
            RData::Rt(_) => RecordType::RT,
            RData::Talink(_) => RecordType::TALINK,
            RData::Ds(_) => RecordType::DS,
            RData::Cds(_) => RecordType::CDS,
            RData::Dnskey(_) => RecordType::DNSKEY,
            RData::Cdnskey(_) => RecordType::CDNSKEY,
            RData::Key(_) => RecordType::KEY,
            RData::Rrsig(_) => RecordType::RRSIG,
            RData::Nsec(_) => RecordType::NSEC,
            RData::Nsec3(_) => RecordType::NSEC3,
            RData::Nsec3Param(_) => RecordType::NSEC3PARAM,
            RData::Csync(_) => RecordType::CSYNC,
            RData::Nxt(_) => RecordType::NXT,
            RData::Hinfo(_) => RecordType::HINFO,
            RData::Isdn(_) => RecordType::ISDN,
            RData::Gpos(_) => RecordType::GPOS,
            RData::Loc(_) => RecordType::LOC,
            RData::Uri(_) => RecordType::URI,
            RData::Caa(_) => RecordType::CAA,
            RData::Cert(_) => RecordType::CERT,
            RData::Sshfp(_) => RecordType::SSHFP,
            RData::Tlsa(_) => RecordType::TLSA,
            RData::Smimea(_) => RecordType::SMIMEA,
            RData::Hip(_) => RecordType::HIP,
            RData::Tkey(_) => RecordType::TKEY,
            RData::Svcb(_) => RecordType::SVCB,
            RData::Https(_) => RecordType::HTTPS,
            RData::L32(_) => RecordType::L32,
            RData::L64(_) => RecordType::L64,
            RData::Nid(_) => RecordType::NID,
            RData::Lp(_) => RecordType::LP,
            RData::Eui48(_) => RecordType::EUI48,
            RData::Eui64(_) => RecordType::EUI64,
            RData::Opaque(_) => RecordType::NULL,
        }
    }

    /// Encode just the RDATA (no length prefix).
    pub fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        match self {
            RData::A(addr) => w.write_bytes(&addr.octets()),
            RData::Aaaa(addr) => w.write_bytes(&addr.octets()),
            RData::Ns(n)
            | RData::Cname(n)
            | RData::Dname(n)
            | RData::Ptr(n)
            | RData::Mb(n)
            | RData::Md(n)
            | RData::Mf(n)
            | RData::Mg(n)
            | RData::Mr(n)
            | RData::NsapPtr(n) => w.write_name_uncompressed(n),
            RData::Soa(v) => v.encode(w),
            RData::Mx(v) => v.encode(w),
            RData::Txt(v) | RData::Spf(v) | RData::Avc(v) | RData::Ninfo(v) => v.encode(w),
            RData::Srv(v) => v.encode(w),
            RData::Naptr(v) => v.encode(w),
            RData::Rp(v) => v.encode(w),
            RData::Afsdb(v) => v.encode(w),
            RData::Px(v) => v.encode(w),
            RData::Kx(v) => v.encode(w),
            RData::Rt(v) => v.encode(w),
            RData::Talink(v) => v.encode(w),
            RData::Ds(v) | RData::Cds(v) => v.encode(w),
            RData::Dnskey(v) | RData::Cdnskey(v) | RData::Key(v) => v.encode(w),
            RData::Rrsig(v) => v.encode(w),
            RData::Nsec(v) => v.encode(w),
            RData::Nsec3(v) => v.encode(w),
            RData::Nsec3Param(v) => v.encode(w),
            RData::Csync(v) => v.encode(w),
            RData::Nxt(v) => v.encode(w),
            RData::Hinfo(v) => v.encode(w),
            RData::Isdn(v) => v.encode(w),
            RData::Gpos(v) => v.encode(w),
            RData::Loc(v) => v.encode(w),
            RData::Uri(v) => v.encode(w),
            RData::Caa(v) => v.encode(w),
            RData::Cert(v) => v.encode(w),
            RData::Sshfp(v) => v.encode(w),
            RData::Tlsa(v) | RData::Smimea(v) => v.encode(w),
            RData::Hip(v) => v.encode(w),
            RData::Tkey(v) => v.encode(w),
            RData::Svcb(v) | RData::Https(v) => v.encode(w),
            RData::L32(v) => v.encode(w),
            RData::L64(v) => v.encode(w),
            RData::Nid(v) => v.encode(w),
            RData::Lp(v) => v.encode(w),
            RData::Eui48(b) => w.write_bytes(b),
            RData::Eui64(b) => w.write_bytes(b),
            RData::Opaque(b) => w.write_bytes(b),
        }
    }

    /// Decode RDATA of the given type. The reader sits at the first RDATA
    /// octet; `rdlen` is the declared RDLENGTH. On success the reader sits
    /// exactly at the end of the RDATA.
    pub fn decode(rtype: RecordType, rdlen: usize, r: &mut WireReader<'_>) -> WireResult<RData> {
        let start = r.position();
        let end = start
            .checked_add(rdlen)
            .ok_or(WireError::Truncated { context: "rdata" })?;
        if end > r.len() {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let data = match rtype {
            RecordType::A => {
                let b = r.read_bytes(4, "A rdata")?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::AAAA => {
                let b = r.read_bytes(16, "AAAA rdata")?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::NS => RData::Ns(r.read_name()?),
            RecordType::CNAME => RData::Cname(r.read_name()?),
            RecordType::DNAME => RData::Dname(r.read_name()?),
            RecordType::PTR => RData::Ptr(r.read_name()?),
            RecordType::MB => RData::Mb(r.read_name()?),
            RecordType::MD => RData::Md(r.read_name()?),
            RecordType::MF => RData::Mf(r.read_name()?),
            RecordType::MG => RData::Mg(r.read_name()?),
            RecordType::MR => RData::Mr(r.read_name()?),
            RecordType::NSAPPTR => RData::NsapPtr(r.read_name()?),
            RecordType::SOA => RData::Soa(Soa::decode(r)?),
            RecordType::MX => RData::Mx(Mx::decode(r)?),
            RecordType::TXT => RData::Txt(TxtData::decode(r, end)?),
            RecordType::SPF => RData::Spf(TxtData::decode(r, end)?),
            RecordType::AVC => RData::Avc(TxtData::decode(r, end)?),
            RecordType::NINFO => RData::Ninfo(TxtData::decode(r, end)?),
            RecordType::SRV => RData::Srv(Srv::decode(r)?),
            RecordType::NAPTR => RData::Naptr(Naptr::decode(r)?),
            RecordType::RP => RData::Rp(Rp::decode(r)?),
            RecordType::AFSDB => RData::Afsdb(Afsdb::decode(r)?),
            RecordType::PX => RData::Px(Px::decode(r)?),
            RecordType::KX => RData::Kx(Kx::decode(r)?),
            RecordType::RT => RData::Rt(Rt::decode(r)?),
            RecordType::TALINK => RData::Talink(Talink::decode(r)?),
            RecordType::DS => RData::Ds(Ds::decode(r, end)?),
            RecordType::CDS => RData::Cds(Ds::decode(r, end)?),
            RecordType::DNSKEY => RData::Dnskey(Dnskey::decode(r, end)?),
            RecordType::CDNSKEY => RData::Cdnskey(Dnskey::decode(r, end)?),
            RecordType::KEY => RData::Key(Dnskey::decode(r, end)?),
            RecordType::RRSIG => RData::Rrsig(Rrsig::decode(r, end)?),
            RecordType::NSEC => RData::Nsec(Nsec::decode(r, end)?),
            RecordType::NSEC3 => RData::Nsec3(Nsec3::decode(r, end)?),
            RecordType::NSEC3PARAM => RData::Nsec3Param(Nsec3Param::decode(r)?),
            RecordType::CSYNC => RData::Csync(Csync::decode(r, end)?),
            RecordType::NXT => RData::Nxt(Nxt::decode(r, end)?),
            RecordType::HINFO => RData::Hinfo(Hinfo::decode(r)?),
            RecordType::ISDN => RData::Isdn(Isdn::decode(r, end)?),
            RecordType::GPOS => RData::Gpos(Gpos::decode(r)?),
            RecordType::LOC => RData::Loc(Loc::decode(r)?),
            RecordType::URI => RData::Uri(Uri::decode(r, end)?),
            RecordType::CAA => RData::Caa(Caa::decode(r, end)?),
            RecordType::CERT => RData::Cert(CertRec::decode(r, end)?),
            RecordType::SSHFP => RData::Sshfp(Sshfp::decode(r, end)?),
            RecordType::TLSA => RData::Tlsa(Tlsa::decode(r, end)?),
            RecordType::SMIMEA => RData::Smimea(Tlsa::decode(r, end)?),
            RecordType::HIP => RData::Hip(Hip::decode(r, end)?),
            RecordType::TKEY => RData::Tkey(Tkey::decode(r)?),
            RecordType::SVCB => RData::Svcb(Svcb::decode(r, end)?),
            RecordType::HTTPS => RData::Https(Svcb::decode(r, end)?),
            RecordType::L32 => RData::L32(L32::decode(r)?),
            RecordType::L64 => RData::L64(L64::decode(r)?),
            RecordType::NID => RData::Nid(Nid::decode(r)?),
            RecordType::LP => RData::Lp(Lp::decode(r)?),
            RecordType::EUI48 => {
                let b = r.read_bytes(6, "EUI48 rdata")?;
                let mut o = [0u8; 6];
                o.copy_from_slice(b);
                RData::Eui48(o)
            }
            RecordType::EUI64 => {
                let b = r.read_bytes(8, "EUI64 rdata")?;
                let mut o = [0u8; 8];
                o.copy_from_slice(b);
                RData::Eui64(o)
            }
            // EID, ATMA, DHCID, OPENPGPKEY, UINFO, UID, GID, UNSPEC, NULL and
            // anything unknown: keep the raw bytes (RFC 3597 treatment).
            _ => RData::Opaque(r.read_bytes(rdlen, "opaque rdata")?.to_vec()),
        };
        let consumed = r.position() - start;
        if consumed != rdlen {
            // A compressed name inside RDATA can legitimately make the
            // in-place representation shorter than RDLENGTH only if the
            // server lied about RDLENGTH; either way the record is malformed.
            return Err(WireError::RdataLength {
                declared: rdlen,
                consumed,
            });
        }
        Ok(data)
    }

    /// Validate RDATA of the given type without materializing it —
    /// accepting **exactly** what [`RData::decode`] accepts. This is what
    /// lets [`crate::MessageView::parse`] reject the same malformed
    /// datagrams the owned decoder rejects while staying allocation-free:
    /// the record shapes that dominate real responses (addresses, name
    /// targets, SOA/MX/SRV) are checked structurally in place; the long
    /// tail falls back to decode-and-discard (whose only allocations are
    /// the payload buffers of blob-carrying types).
    pub fn validate(rtype: RecordType, rdlen: usize, r: &mut WireReader<'_>) -> WireResult<()> {
        let start = r.position();
        let end = start
            .checked_add(rdlen)
            .ok_or(WireError::Truncated { context: "rdata" })?;
        if end > r.len() {
            return Err(WireError::Truncated { context: "rdata" });
        }
        match rtype {
            RecordType::A => {
                r.read_bytes(4, "A rdata")?;
            }
            RecordType::AAAA => {
                r.read_bytes(16, "AAAA rdata")?;
            }
            RecordType::NS
            | RecordType::CNAME
            | RecordType::DNAME
            | RecordType::PTR
            | RecordType::MB
            | RecordType::MD
            | RecordType::MF
            | RecordType::MG
            | RecordType::MR
            | RecordType::NSAPPTR => {
                r.read_name()?;
            }
            RecordType::SOA => {
                r.read_name()?;
                r.read_name()?;
                r.read_bytes(20, "SOA counters")?;
            }
            RecordType::MX => {
                r.read_u16("MX preference")?;
                r.read_name()?;
            }
            RecordType::SRV => {
                r.read_bytes(6, "SRV fixed fields")?;
                r.read_name()?;
            }
            _ => {
                r.seek(start)?;
                return Self::decode(rtype, rdlen, r).map(|_| ());
            }
        }
        let consumed = r.position() - start;
        if consumed != rdlen {
            return Err(WireError::RdataLength {
                declared: rdlen,
                consumed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;

    fn roundtrip(rtype: RecordType, rdata: &RData) -> RData {
        let mut w = WireWriter::new();
        rdata.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let decoded = RData::decode(rtype, bytes.len(), &mut r).unwrap();
        assert!(r.is_empty(), "{rtype}: trailing bytes");
        decoded
    }

    #[test]
    fn a_roundtrip() {
        let d = RData::A("192.0.2.33".parse().unwrap());
        assert_eq!(roundtrip(RecordType::A, &d), d);
    }

    #[test]
    fn aaaa_roundtrip() {
        let d = RData::Aaaa("2001:db8::33".parse().unwrap());
        assert_eq!(roundtrip(RecordType::AAAA, &d), d);
    }

    #[test]
    fn name_types_roundtrip() {
        let n: Name = "ns1.example.com".parse().unwrap();
        for (t, d) in [
            (RecordType::NS, RData::Ns(n.clone())),
            (RecordType::CNAME, RData::Cname(n.clone())),
            (RecordType::PTR, RData::Ptr(n.clone())),
            (RecordType::DNAME, RData::Dname(n.clone())),
            (RecordType::MB, RData::Mb(n.clone())),
            (RecordType::MG, RData::Mg(n.clone())),
            (RecordType::MR, RData::Mr(n.clone())),
            (RecordType::NSAPPTR, RData::NsapPtr(n.clone())),
        ] {
            assert_eq!(roundtrip(t, &d), d);
        }
    }

    #[test]
    fn truncated_a_rejected() {
        let bytes = [192, 0, 2];
        let mut r = WireReader::new(&bytes);
        assert!(RData::decode(RecordType::A, 3, &mut r).is_err());
    }

    #[test]
    fn rdlength_mismatch_rejected() {
        // A 4-byte A record with a declared length of 5.
        let bytes = [192, 0, 2, 1, 0];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            RData::decode(RecordType::A, 5, &mut r),
            Err(WireError::RdataLength {
                declared: 5,
                consumed: 4
            })
        ));
    }

    #[test]
    fn unknown_type_kept_opaque() {
        let bytes = [1, 2, 3, 4, 5];
        let mut r = WireReader::new(&bytes);
        let d = RData::decode(RecordType::Unknown(999), 5, &mut r).unwrap();
        assert_eq!(d, RData::Opaque(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn eui_roundtrips() {
        let d48 = RData::Eui48([1, 2, 3, 4, 5, 6]);
        assert_eq!(roundtrip(RecordType::EUI48, &d48), d48);
        let d64 = RData::Eui64([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(roundtrip(RecordType::EUI64, &d64), d64);
    }
}
