//! Everything else: security associations, service bindings, location,
//! ILNP, and the grab-bag of historic types.

use std::net::Ipv4Addr;

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::{WireError, WireResult};
use crate::name::Name;

/// HINFO: host CPU and OS (RFC 1035 §3.3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hinfo {
    /// CPU string.
    pub cpu: Vec<u8>,
    /// OS string.
    pub os: Vec<u8>,
}

impl Hinfo {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_char_string(&self.cpu)?;
        w.write_char_string(&self.os)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Hinfo> {
        Ok(Hinfo {
            cpu: r.read_char_string("HINFO cpu")?,
            os: r.read_char_string("HINFO os")?,
        })
    }
}

/// ISDN address, optionally with a subaddress (RFC 1183 §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Isdn {
    /// ISDN address digits.
    pub address: Vec<u8>,
    /// Optional subaddress.
    pub subaddress: Option<Vec<u8>>,
}

impl Isdn {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_char_string(&self.address)?;
        if let Some(sa) = &self.subaddress {
            w.write_char_string(sa)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Isdn> {
        let address = r.read_char_string("ISDN address")?;
        let subaddress = if r.position() < end {
            Some(r.read_char_string("ISDN subaddress")?)
        } else {
            None
        };
        Ok(Isdn {
            address,
            subaddress,
        })
    }
}

/// GPOS: geographic position as three text fields (RFC 1712, obsolete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gpos {
    /// Longitude in degrees, textual.
    pub longitude: Vec<u8>,
    /// Latitude in degrees, textual.
    pub latitude: Vec<u8>,
    /// Altitude in meters, textual.
    pub altitude: Vec<u8>,
}

impl Gpos {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_char_string(&self.longitude)?;
        w.write_char_string(&self.latitude)?;
        w.write_char_string(&self.altitude)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Gpos> {
        Ok(Gpos {
            longitude: r.read_char_string("GPOS longitude")?,
            latitude: r.read_char_string("GPOS latitude")?,
            altitude: r.read_char_string("GPOS altitude")?,
        })
    }
}

/// LOC: binary geodetic location (RFC 1876).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loc {
    /// Format version, must be 0.
    pub version: u8,
    /// Sphere diameter, exponent-encoded.
    pub size: u8,
    /// Horizontal precision, exponent-encoded.
    pub horiz_pre: u8,
    /// Vertical precision, exponent-encoded.
    pub vert_pre: u8,
    /// Latitude, 1/1000 arcsec, offset 2^31.
    pub latitude: u32,
    /// Longitude, 1/1000 arcsec, offset 2^31.
    pub longitude: u32,
    /// Altitude, centimeters above -100km.
    pub altitude: u32,
}

impl Loc {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.version)?;
        w.write_u8(self.size)?;
        w.write_u8(self.horiz_pre)?;
        w.write_u8(self.vert_pre)?;
        w.write_u32(self.latitude)?;
        w.write_u32(self.longitude)?;
        w.write_u32(self.altitude)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Loc> {
        Ok(Loc {
            version: r.read_u8("LOC version")?,
            size: r.read_u8("LOC size")?,
            horiz_pre: r.read_u8("LOC horiz pre")?,
            vert_pre: r.read_u8("LOC vert pre")?,
            latitude: r.read_u32("LOC latitude")?,
            longitude: r.read_u32("LOC longitude")?,
            altitude: r.read_u32("LOC altitude")?,
        })
    }
}

/// URI record (RFC 7553).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uri {
    /// Lower is preferred.
    pub priority: u16,
    /// Relative weight among same-priority records.
    pub weight: u16,
    /// The URI itself (not a character-string; the rest of RDATA).
    pub target: Vec<u8>,
}

impl Uri {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.priority)?;
        w.write_u16(self.weight)?;
        w.write_bytes(&self.target)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Uri> {
        let priority = r.read_u16("URI priority")?;
        let weight = r.read_u16("URI weight")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Uri {
            priority,
            weight,
            target: r.read_bytes(remaining, "URI target")?.to_vec(),
        })
    }
}

/// CAA: certification authority authorization (RFC 8659).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Caa {
    /// Bit 7 is the critical flag.
    pub flags: u8,
    /// Property tag (`issue`, `issuewild`, `iodef`, ...).
    pub tag: Vec<u8>,
    /// Property value.
    pub value: Vec<u8>,
}

impl Caa {
    /// The critical bit (RFC 8659 §4.1.1).
    pub fn critical(&self) -> bool {
        self.flags & 0x80 != 0
    }

    /// Tag as lossy text, lowercased — CAA tags are case-insensitive.
    pub fn tag_str(&self) -> String {
        String::from_utf8_lossy(&self.tag).to_ascii_lowercase()
    }

    /// Value as lossy text.
    pub fn value_str(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }

    /// True if the tag is one RFC 8659 defines. The §6 case study counts
    /// records failing this as "invalid tags".
    pub fn tag_is_standard(&self) -> bool {
        matches!(
            self.tag_str().as_str(),
            "issue" | "issuewild" | "iodef" | "contactemail" | "contactphone" | "issuemail"
        )
    }

    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.flags)?;
        w.write_char_string(&self.tag)?;
        w.write_bytes(&self.value)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Caa> {
        let flags = r.read_u8("CAA flags")?;
        let tag = r.read_char_string("CAA tag")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Caa {
            flags,
            tag,
            value: r.read_bytes(remaining, "CAA value")?.to_vec(),
        })
    }
}

/// CERT: certificate record (RFC 4398).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRec {
    /// Certificate type (1=PKIX, 2=SPKI, 3=PGP, ...).
    pub cert_type: u16,
    /// Key tag.
    pub key_tag: u16,
    /// Algorithm.
    pub algorithm: u8,
    /// Certificate or CRL bytes.
    pub certificate: Vec<u8>,
}

impl CertRec {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.cert_type)?;
        w.write_u16(self.key_tag)?;
        w.write_u8(self.algorithm)?;
        w.write_bytes(&self.certificate)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<CertRec> {
        let cert_type = r.read_u16("CERT type")?;
        let key_tag = r.read_u16("CERT key tag")?;
        let algorithm = r.read_u8("CERT algorithm")?;
        let remaining = end.saturating_sub(r.position());
        Ok(CertRec {
            cert_type,
            key_tag,
            algorithm,
            certificate: r.read_bytes(remaining, "CERT data")?.to_vec(),
        })
    }
}

/// SSHFP: SSH host key fingerprint (RFC 4255).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sshfp {
    /// Key algorithm (1=RSA, 2=DSA, 3=ECDSA, 4=Ed25519).
    pub algorithm: u8,
    /// Fingerprint type (1=SHA-1, 2=SHA-256).
    pub fp_type: u8,
    /// Fingerprint bytes.
    pub fingerprint: Vec<u8>,
}

impl Sshfp {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.algorithm)?;
        w.write_u8(self.fp_type)?;
        w.write_bytes(&self.fingerprint)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Sshfp> {
        let algorithm = r.read_u8("SSHFP algorithm")?;
        let fp_type = r.read_u8("SSHFP fp type")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Sshfp {
            algorithm,
            fp_type,
            fingerprint: r.read_bytes(remaining, "SSHFP fingerprint")?.to_vec(),
        })
    }
}

/// TLSA / SMIMEA: DANE certificate association (RFC 6698 / 8162).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlsa {
    /// Certificate usage (0-3).
    pub usage: u8,
    /// Selector (0=full cert, 1=SPKI).
    pub selector: u8,
    /// Matching type (0=exact, 1=SHA-256, 2=SHA-512).
    pub matching_type: u8,
    /// Certificate association data.
    pub cert_data: Vec<u8>,
}

impl Tlsa {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u8(self.usage)?;
        w.write_u8(self.selector)?;
        w.write_u8(self.matching_type)?;
        w.write_bytes(&self.cert_data)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Tlsa> {
        let usage = r.read_u8("TLSA usage")?;
        let selector = r.read_u8("TLSA selector")?;
        let matching_type = r.read_u8("TLSA matching type")?;
        let remaining = end.saturating_sub(r.position());
        Ok(Tlsa {
            usage,
            selector,
            matching_type,
            cert_data: r.read_bytes(remaining, "TLSA data")?.to_vec(),
        })
    }
}

/// HIP: host identity protocol (RFC 8005).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hip {
    /// Public key algorithm.
    pub pk_algorithm: u8,
    /// Host identity tag.
    pub hit: Vec<u8>,
    /// Public key.
    pub public_key: Vec<u8>,
    /// Rendezvous servers, in preference order.
    pub rendezvous: Vec<Name>,
}

impl Hip {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        if self.hit.len() > 255 {
            return Err(WireError::InvalidValue {
                field: "HIP hit length",
            });
        }
        if self.public_key.len() > 65535 {
            return Err(WireError::InvalidValue {
                field: "HIP pk length",
            });
        }
        w.write_u8(self.hit.len() as u8)?;
        w.write_u8(self.pk_algorithm)?;
        w.write_u16(self.public_key.len() as u16)?;
        w.write_bytes(&self.hit)?;
        w.write_bytes(&self.public_key)?;
        for rv in &self.rendezvous {
            w.write_name_uncompressed(rv)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Hip> {
        let hit_len = r.read_u8("HIP hit length")? as usize;
        let pk_algorithm = r.read_u8("HIP algorithm")?;
        let pk_len = r.read_u16("HIP pk length")? as usize;
        let hit = r.read_bytes(hit_len, "HIP hit")?.to_vec();
        let public_key = r.read_bytes(pk_len, "HIP public key")?.to_vec();
        let mut rendezvous = Vec::new();
        while r.position() < end {
            rendezvous.push(r.read_name()?);
        }
        Ok(Hip {
            pk_algorithm,
            hit,
            public_key,
            rendezvous,
        })
    }
}

/// TKEY: transaction key establishment (RFC 2930).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tkey {
    /// Algorithm name.
    pub algorithm: Name,
    /// Inception time (UNIX seconds).
    pub inception: u32,
    /// Expiration time (UNIX seconds).
    pub expiration: u32,
    /// Mode (2 = Diffie-Hellman, 3 = GSS-API, ...).
    pub mode: u16,
    /// Extended error.
    pub error: u16,
    /// Key data.
    pub key: Vec<u8>,
    /// Other data.
    pub other: Vec<u8>,
}

impl Tkey {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        if self.key.len() > 65535 || self.other.len() > 65535 {
            return Err(WireError::InvalidValue {
                field: "TKEY data length",
            });
        }
        w.write_name_uncompressed(&self.algorithm)?;
        w.write_u32(self.inception)?;
        w.write_u32(self.expiration)?;
        w.write_u16(self.mode)?;
        w.write_u16(self.error)?;
        w.write_u16(self.key.len() as u16)?;
        w.write_bytes(&self.key)?;
        w.write_u16(self.other.len() as u16)?;
        w.write_bytes(&self.other)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Tkey> {
        let algorithm = r.read_name()?;
        let inception = r.read_u32("TKEY inception")?;
        let expiration = r.read_u32("TKEY expiration")?;
        let mode = r.read_u16("TKEY mode")?;
        let error = r.read_u16("TKEY error")?;
        let key_len = r.read_u16("TKEY key length")? as usize;
        let key = r.read_bytes(key_len, "TKEY key")?.to_vec();
        let other_len = r.read_u16("TKEY other length")? as usize;
        let other = r.read_bytes(other_len, "TKEY other")?.to_vec();
        Ok(Tkey {
            algorithm,
            inception,
            expiration,
            mode,
            error,
            key,
            other,
        })
    }
}

/// SVCB / HTTPS: service binding (RFC 9460).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Svcb {
    /// 0 = alias mode, >0 = service priority.
    pub priority: u16,
    /// Target name (`.` means the owner itself).
    pub target: Name,
    /// SvcParams as (key, value) pairs, ascending by key.
    pub params: Vec<(u16, Vec<u8>)>,
}

impl Svcb {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.priority)?;
        w.write_name_uncompressed(&self.target)?;
        for (key, value) in &self.params {
            if value.len() > 65535 {
                return Err(WireError::InvalidValue {
                    field: "SVCB param length",
                });
            }
            w.write_u16(*key)?;
            w.write_u16(value.len() as u16)?;
            w.write_bytes(value)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<Svcb> {
        let priority = r.read_u16("SVCB priority")?;
        let target = r.read_name()?;
        let mut params = Vec::new();
        let mut last_key: Option<u16> = None;
        while r.position() < end {
            let key = r.read_u16("SVCB param key")?;
            if let Some(prev) = last_key {
                // RFC 9460 §2.2: keys strictly ascending.
                if key <= prev {
                    return Err(WireError::InvalidValue {
                        field: "SVCB param order",
                    });
                }
            }
            last_key = Some(key);
            let len = r.read_u16("SVCB param length")? as usize;
            params.push((key, r.read_bytes(len, "SVCB param value")?.to_vec()));
        }
        Ok(Svcb {
            priority,
            target,
            params,
        })
    }
}

/// L32: ILNP 32-bit locator (RFC 6742).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L32 {
    /// Lower is preferred.
    pub preference: u16,
    /// IPv4-form locator.
    pub locator: Ipv4Addr,
}

impl L32 {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_bytes(&self.locator.octets())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<L32> {
        let preference = r.read_u16("L32 preference")?;
        let b = r.read_bytes(4, "L32 locator")?;
        Ok(L32 {
            preference,
            locator: Ipv4Addr::new(b[0], b[1], b[2], b[3]),
        })
    }
}

/// L64: ILNP 64-bit locator (RFC 6742).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L64 {
    /// Lower is preferred.
    pub preference: u16,
    /// 64-bit locator.
    pub locator: u64,
}

impl L64 {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_u64(self.locator)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<L64> {
        Ok(L64 {
            preference: r.read_u16("L64 preference")?,
            locator: r.read_u64("L64 locator")?,
        })
    }
}

/// NID: ILNP node identifier (RFC 6742).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nid {
    /// Lower is preferred.
    pub preference: u16,
    /// 64-bit node identifier.
    pub node_id: u64,
}

impl Nid {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_u64(self.node_id)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Nid> {
        Ok(Nid {
            preference: r.read_u16("NID preference")?,
            node_id: r.read_u64("NID node id")?,
        })
    }
}

/// LP: ILNP locator pointer (RFC 6742).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lp {
    /// Lower is preferred.
    pub preference: u16,
    /// Name holding L32/L64 records.
    pub fqdn: Name,
}

impl Lp {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_name_uncompressed(&self.fqdn)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Lp> {
        Ok(Lp {
            preference: r.read_u16("LP preference")?,
            fqdn: r.read_name()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;
    use crate::rdata::RData;
    use crate::rtype::RecordType;

    fn roundtrip(rtype: RecordType, rdata: &RData) {
        let mut w = WireWriter::new();
        rdata.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(&RData::decode(rtype, bytes.len(), &mut r).unwrap(), rdata);
    }

    #[test]
    fn caa_roundtrip_and_helpers() {
        let caa = Caa {
            flags: 0x80,
            tag: b"issue".to_vec(),
            value: b"letsencrypt.org".to_vec(),
        };
        assert!(caa.critical());
        assert!(caa.tag_is_standard());
        assert_eq!(caa.value_str(), "letsencrypt.org");
        roundtrip(RecordType::CAA, &RData::Caa(caa));
    }

    #[test]
    fn caa_invalid_tag_detected() {
        let caa = Caa {
            flags: 0,
            tag: b"issuer".to_vec(), // the §6 registrar bug: bad tag names
            value: b"comodoca.com".to_vec(),
        };
        assert!(!caa.tag_is_standard());
    }

    #[test]
    fn caa_tag_case_insensitive() {
        let caa = Caa {
            flags: 0,
            tag: b"IsSuE".to_vec(),
            value: Vec::new(),
        };
        assert!(caa.tag_is_standard());
        assert_eq!(caa.tag_str(), "issue");
    }

    #[test]
    fn hinfo_isdn_gpos_roundtrip() {
        roundtrip(
            RecordType::HINFO,
            &RData::Hinfo(Hinfo {
                cpu: b"AMD64".to_vec(),
                os: b"Linux".to_vec(),
            }),
        );
        roundtrip(
            RecordType::ISDN,
            &RData::Isdn(Isdn {
                address: b"150862028003217".to_vec(),
                subaddress: Some(b"004".to_vec()),
            }),
        );
        roundtrip(
            RecordType::ISDN,
            &RData::Isdn(Isdn {
                address: b"150862028003217".to_vec(),
                subaddress: None,
            }),
        );
        roundtrip(
            RecordType::GPOS,
            &RData::Gpos(Gpos {
                longitude: b"-32.6882".to_vec(),
                latitude: b"116.8652".to_vec(),
                altitude: b"10.0".to_vec(),
            }),
        );
    }

    #[test]
    fn loc_roundtrip() {
        roundtrip(
            RecordType::LOC,
            &RData::Loc(Loc {
                version: 0,
                size: 0x12,
                horiz_pre: 0x16,
                vert_pre: 0x13,
                latitude: 2_332_887_285,
                longitude: 2_146_974_024,
                altitude: 10_000_100,
            }),
        );
    }

    #[test]
    fn uri_roundtrip() {
        roundtrip(
            RecordType::URI,
            &RData::Uri(Uri {
                priority: 10,
                weight: 1,
                target: b"https://example.com/".to_vec(),
            }),
        );
    }

    #[test]
    fn dane_family_roundtrip() {
        roundtrip(
            RecordType::TLSA,
            &RData::Tlsa(Tlsa {
                usage: 3,
                selector: 1,
                matching_type: 1,
                cert_data: vec![0xAB; 32],
            }),
        );
        roundtrip(
            RecordType::SSHFP,
            &RData::Sshfp(Sshfp {
                algorithm: 4,
                fp_type: 2,
                fingerprint: vec![0xCD; 32],
            }),
        );
        roundtrip(
            RecordType::CERT,
            &RData::Cert(CertRec {
                cert_type: 1,
                key_tag: 12345,
                algorithm: 8,
                certificate: vec![0x30, 0x82],
            }),
        );
    }

    #[test]
    fn hip_roundtrip() {
        roundtrip(
            RecordType::HIP,
            &RData::Hip(Hip {
                pk_algorithm: 2,
                hit: vec![0x20; 16],
                public_key: vec![0x99; 64],
                rendezvous: vec![
                    "rvs1.example.com".parse().unwrap(),
                    "rvs2.example.com".parse().unwrap(),
                ],
            }),
        );
    }

    #[test]
    fn tkey_roundtrip() {
        roundtrip(
            RecordType::TKEY,
            &RData::Tkey(Tkey {
                algorithm: "gss-tsig".parse().unwrap(),
                inception: 1_652_810_400,
                expiration: 1_652_814_000,
                mode: 3,
                error: 0,
                key: vec![1, 2, 3],
                other: Vec::new(),
            }),
        );
    }

    #[test]
    fn svcb_roundtrip() {
        roundtrip(
            RecordType::HTTPS,
            &RData::Https(Svcb {
                priority: 1,
                target: Name::root(),
                params: vec![(1, b"\x02h2".to_vec()), (4, vec![192, 0, 2, 1])],
            }),
        );
    }

    #[test]
    fn svcb_param_order_enforced() {
        let mut w = WireWriter::new();
        w.write_u16(1).unwrap();
        w.write_name_uncompressed(&Name::root()).unwrap();
        // key 4 then key 1: out of order
        for key in [4u16, 1] {
            w.write_u16(key).unwrap();
            w.write_u16(0).unwrap();
        }
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(Svcb::decode(&mut r, bytes.len()).is_err());
    }

    #[test]
    fn ilnp_family_roundtrip() {
        roundtrip(
            RecordType::L32,
            &RData::L32(L32 {
                preference: 10,
                locator: "10.1.2.0".parse().unwrap(),
            }),
        );
        roundtrip(
            RecordType::L64,
            &RData::L64(L64 {
                preference: 10,
                locator: 0x2001_0DB8_1140_1000,
            }),
        );
        roundtrip(
            RecordType::NID,
            &RData::Nid(Nid {
                preference: 10,
                node_id: 0x0014_4FFF_FF20_EE64,
            }),
        );
        roundtrip(
            RecordType::LP,
            &RData::Lp(Lp {
                preference: 10,
                fqdn: "l64-subnet.example.com".parse().unwrap(),
            }),
        );
    }
}
