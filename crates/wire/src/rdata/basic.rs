//! The classic RFC 1035 record bodies plus their close relatives.

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::WireResult;
use crate::name::Name;

/// SOA: zone of authority metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary master name server.
    pub mname: Name,
    /// Responsible mailbox (dots-as-at encoding).
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval after failed refresh (seconds).
    pub retry: u32,
    /// Expiry of zone data on secondaries (seconds).
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308 reinterpretation of MINIMUM).
    pub minimum: u32,
}

impl Soa {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name_uncompressed(&self.mname)?;
        w.write_name_uncompressed(&self.rname)?;
        w.write_u32(self.serial)?;
        w.write_u32(self.refresh)?;
        w.write_u32(self.retry)?;
        w.write_u32(self.expire)?;
        w.write_u32(self.minimum)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Soa> {
        Ok(Soa {
            mname: r.read_name()?,
            rname: r.read_name()?,
            serial: r.read_u32("SOA serial")?,
            refresh: r.read_u32("SOA refresh")?,
            retry: r.read_u32("SOA retry")?,
            expire: r.read_u32("SOA expire")?,
            minimum: r.read_u32("SOA minimum")?,
        })
    }
}

/// MX: mail exchange with preference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mx {
    /// Lower is preferred.
    pub preference: u16,
    /// Host that accepts mail.
    pub exchange: Name,
}

impl Mx {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_name_uncompressed(&self.exchange)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Mx> {
        Ok(Mx {
            preference: r.read_u16("MX preference")?,
            exchange: r.read_name()?,
        })
    }
}

/// TXT and TXT-shaped types: one or more `<character-string>`s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxtData {
    /// The raw strings, each at most 255 octets.
    pub strings: Vec<Vec<u8>>,
}

impl TxtData {
    /// Build from one string, splitting at the 255-octet limit the way
    /// publishing tools do for long SPF/DKIM records.
    pub fn from_text(text: &str) -> TxtData {
        let bytes = text.as_bytes();
        let strings = if bytes.is_empty() {
            vec![Vec::new()]
        } else {
            bytes.chunks(255).map(|c| c.to_vec()).collect()
        };
        TxtData { strings }
    }

    /// All strings concatenated and lossy-decoded — what `CheckTxtRecords`
    /// style module logic matches against.
    pub fn joined(&self) -> String {
        let total: Vec<u8> = self.strings.iter().flatten().copied().collect();
        String::from_utf8_lossy(&total).into_owned()
    }

    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        // An empty TXT is a single empty character-string.
        if self.strings.is_empty() {
            return w.write_char_string(&[]);
        }
        for s in &self.strings {
            w.write_char_string(s)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, end: usize) -> WireResult<TxtData> {
        let mut strings = Vec::new();
        while r.position() < end {
            strings.push(r.read_char_string("TXT string")?);
        }
        Ok(TxtData { strings })
    }
}

/// SRV: service location (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Srv {
    /// Lower is tried first.
    pub priority: u16,
    /// Relative weight among same-priority targets.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Target host (`.` means "service not available").
    pub target: Name,
}

impl Srv {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.priority)?;
        w.write_u16(self.weight)?;
        w.write_u16(self.port)?;
        w.write_name_uncompressed(&self.target)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Srv> {
        Ok(Srv {
            priority: r.read_u16("SRV priority")?,
            weight: r.read_u16("SRV weight")?,
            port: r.read_u16("SRV port")?,
            target: r.read_name()?,
        })
    }
}

/// NAPTR: naming authority pointer (RFC 3403).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Naptr {
    /// Processing order, lowest first.
    pub order: u16,
    /// Preference among equal orders.
    pub preference: u16,
    /// Flags string (e.g. `"S"`, `"U"`).
    pub flags: Vec<u8>,
    /// Service parameters (e.g. `"SIP+D2U"`).
    pub service: Vec<u8>,
    /// Substitution regexp.
    pub regexp: Vec<u8>,
    /// Replacement name when regexp is empty.
    pub replacement: Name,
}

impl Naptr {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.order)?;
        w.write_u16(self.preference)?;
        w.write_char_string(&self.flags)?;
        w.write_char_string(&self.service)?;
        w.write_char_string(&self.regexp)?;
        w.write_name_uncompressed(&self.replacement)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Naptr> {
        Ok(Naptr {
            order: r.read_u16("NAPTR order")?,
            preference: r.read_u16("NAPTR preference")?,
            flags: r.read_char_string("NAPTR flags")?,
            service: r.read_char_string("NAPTR service")?,
            regexp: r.read_char_string("NAPTR regexp")?,
            replacement: r.read_name()?,
        })
    }
}

/// RP: responsible person (RFC 1183).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rp {
    /// Mailbox of the responsible person.
    pub mbox: Name,
    /// Name holding an explanatory TXT record.
    pub txt: Name,
}

impl Rp {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name_uncompressed(&self.mbox)?;
        w.write_name_uncompressed(&self.txt)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Rp> {
        Ok(Rp {
            mbox: r.read_name()?,
            txt: r.read_name()?,
        })
    }
}

/// AFSDB: AFS database location (RFC 1183).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Afsdb {
    /// 1 = AFS cell database, 2 = DCE authenticated server.
    pub subtype: u16,
    /// Host with the database.
    pub hostname: Name,
}

impl Afsdb {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.subtype)?;
        w.write_name_uncompressed(&self.hostname)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Afsdb> {
        Ok(Afsdb {
            subtype: r.read_u16("AFSDB subtype")?,
            hostname: r.read_name()?,
        })
    }
}

/// PX: X.400 address mapping (RFC 2163).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Px {
    /// Lower is preferred.
    pub preference: u16,
    /// RFC 822 domain.
    pub map822: Name,
    /// X.400 domain.
    pub mapx400: Name,
}

impl Px {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_name_uncompressed(&self.map822)?;
        w.write_name_uncompressed(&self.mapx400)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Px> {
        Ok(Px {
            preference: r.read_u16("PX preference")?,
            map822: r.read_name()?,
            mapx400: r.read_name()?,
        })
    }
}

/// KX: key exchanger (RFC 2230).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kx {
    /// Lower is preferred.
    pub preference: u16,
    /// Key exchange host.
    pub exchanger: Name,
}

impl Kx {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_name_uncompressed(&self.exchanger)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Kx> {
        Ok(Kx {
            preference: r.read_u16("KX preference")?,
            exchanger: r.read_name()?,
        })
    }
}

/// RT: route through (RFC 1183, obsolete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rt {
    /// Lower is preferred.
    pub preference: u16,
    /// Intermediate host.
    pub host: Name,
}

impl Rt {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_u16(self.preference)?;
        w.write_name_uncompressed(&self.host)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Rt> {
        Ok(Rt {
            preference: r.read_u16("RT preference")?,
            host: r.read_name()?,
        })
    }
}

/// TALINK: trust anchor link (draft, historic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Talink {
    /// Previous name in the chain.
    pub previous: Name,
    /// Next name in the chain.
    pub next: Name,
}

impl Talink {
    pub(crate) fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name_uncompressed(&self.previous)?;
        w.write_name_uncompressed(&self.next)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> WireResult<Talink> {
        Ok(Talink {
            previous: r.read_name()?,
            next: r.read_name()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;
    use crate::rdata::RData;
    use crate::rtype::RecordType;

    fn roundtrip(rtype: RecordType, rdata: &RData) {
        let mut w = WireWriter::new();
        rdata.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(&RData::decode(rtype, bytes.len(), &mut r).unwrap(), rdata);
    }

    #[test]
    fn soa_roundtrip() {
        roundtrip(
            RecordType::SOA,
            &RData::Soa(Soa {
                mname: "ns1.example.com".parse().unwrap(),
                rname: "hostmaster.example.com".parse().unwrap(),
                serial: 20_220_518,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        );
    }

    #[test]
    fn mx_roundtrip() {
        roundtrip(
            RecordType::MX,
            &RData::Mx(Mx {
                preference: 10,
                exchange: "mail.example.com".parse().unwrap(),
            }),
        );
    }

    #[test]
    fn txt_multi_string_roundtrip() {
        roundtrip(
            RecordType::TXT,
            &RData::Txt(TxtData {
                strings: vec![b"v=spf1 ".to_vec(), b"-all".to_vec()],
            }),
        );
    }

    #[test]
    fn txt_empty_encodes_one_empty_string() {
        let mut w = WireWriter::new();
        RData::Txt(TxtData::default()).encode(&mut w).unwrap();
        assert_eq!(w.finish(), vec![0u8]);
    }

    #[test]
    fn txt_long_text_split_at_255() {
        let long = "a".repeat(600);
        let t = TxtData::from_text(&long);
        assert_eq!(t.strings.len(), 3);
        assert_eq!(t.strings[0].len(), 255);
        assert_eq!(t.strings[2].len(), 90);
        assert_eq!(t.joined(), long);
    }

    #[test]
    fn srv_roundtrip() {
        roundtrip(
            RecordType::SRV,
            &RData::Srv(Srv {
                priority: 0,
                weight: 5,
                port: 5060,
                target: "sip.example.com".parse().unwrap(),
            }),
        );
    }

    #[test]
    fn naptr_roundtrip() {
        roundtrip(
            RecordType::NAPTR,
            &RData::Naptr(Naptr {
                order: 100,
                preference: 50,
                flags: b"S".to_vec(),
                service: b"SIP+D2U".to_vec(),
                regexp: Vec::new(),
                replacement: "_sip._udp.example.com".parse().unwrap(),
            }),
        );
    }

    #[test]
    fn two_name_types_roundtrip() {
        roundtrip(
            RecordType::RP,
            &RData::Rp(Rp {
                mbox: "admin.example.com".parse().unwrap(),
                txt: "info.example.com".parse().unwrap(),
            }),
        );
        roundtrip(
            RecordType::TALINK,
            &RData::Talink(Talink {
                previous: "a.example".parse().unwrap(),
                next: "b.example".parse().unwrap(),
            }),
        );
        roundtrip(
            RecordType::PX,
            &RData::Px(Px {
                preference: 10,
                map822: "example.com".parse().unwrap(),
                mapx400: "px400.example.com".parse().unwrap(),
            }),
        );
    }

    #[test]
    fn preference_name_types_roundtrip() {
        roundtrip(
            RecordType::AFSDB,
            &RData::Afsdb(Afsdb {
                subtype: 1,
                hostname: "afs.example.com".parse().unwrap(),
            }),
        );
        roundtrip(
            RecordType::KX,
            &RData::Kx(Kx {
                preference: 5,
                exchanger: "kx.example.com".parse().unwrap(),
            }),
        );
        roundtrip(
            RecordType::RT,
            &RData::Rt(Rt {
                preference: 2,
                host: "relay.example.com".parse().unwrap(),
            }),
        );
    }
}
