//! ZDNS-style JSON serialization.
//!
//! ZDNS's defining interface is programmatically interpretable JSON
//! (Appendix C of the paper contrasts it with dig's text). This module
//! renders records, flags, and whole messages in the same shape:
//!
//! ```json
//! {"answer":"192.5.6.30","class":"IN","name":"a.gtld-servers.net","ttl":172800,"type":"A"}
//! ```

use serde_json::{json, Map, Value};

use crate::header::{Flags, Rcode};
use crate::message::Message;
use crate::rdata::RData;
use crate::record::Record;

fn name_with_dot(n: &crate::name::Name) -> String {
    let s = n.to_string();
    if s == "." {
        s
    } else {
        format!("{s}.")
    }
}

fn b64(bytes: &[u8]) -> String {
    // Standard base64 with padding; hand-rolled to avoid a dependency.
    const TABLE: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = b0 << 16 | b1 << 8 | b2;
        out.push(TABLE[(n >> 18) as usize & 63] as char);
        out.push(TABLE[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            TABLE[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            TABLE[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The `answer` value for a record: a string for simple types, an object for
/// structured ones — the shape ZDNS's typed result structs produce.
pub fn answer_value(rdata: &RData) -> Value {
    match rdata {
        RData::A(a) => json!(a.to_string()),
        RData::Aaaa(a) => json!(a.to_string()),
        RData::Ns(n)
        | RData::Cname(n)
        | RData::Dname(n)
        | RData::Ptr(n)
        | RData::Mb(n)
        | RData::Md(n)
        | RData::Mf(n)
        | RData::Mg(n)
        | RData::Mr(n)
        | RData::NsapPtr(n) => json!(name_with_dot(n)),
        RData::Soa(s) => json!({
            "mname": name_with_dot(&s.mname),
            "rname": name_with_dot(&s.rname),
            "serial": s.serial,
            "refresh": s.refresh,
            "retry": s.retry,
            "expire": s.expire,
            "min_ttl": s.minimum,
        }),
        RData::Mx(m) => json!({
            "preference": m.preference,
            "name": name_with_dot(&m.exchange),
        }),
        RData::Txt(t) | RData::Spf(t) | RData::Avc(t) | RData::Ninfo(t) => json!(t.joined()),
        RData::Srv(s) => json!({
            "priority": s.priority,
            "weight": s.weight,
            "port": s.port,
            "target": name_with_dot(&s.target),
        }),
        RData::Naptr(n) => json!({
            "order": n.order,
            "preference": n.preference,
            "flags": String::from_utf8_lossy(&n.flags),
            "service": String::from_utf8_lossy(&n.service),
            "regexp": String::from_utf8_lossy(&n.regexp),
            "replacement": name_with_dot(&n.replacement),
        }),
        RData::Rp(rp) => json!({
            "mbox": name_with_dot(&rp.mbox),
            "txt": name_with_dot(&rp.txt),
        }),
        RData::Afsdb(a) => json!({
            "subtype": a.subtype,
            "hostname": name_with_dot(&a.hostname),
        }),
        RData::Px(p) => json!({
            "preference": p.preference,
            "map822": name_with_dot(&p.map822),
            "mapx400": name_with_dot(&p.mapx400),
        }),
        RData::Kx(k) => json!({
            "preference": k.preference,
            "exchanger": name_with_dot(&k.exchanger),
        }),
        RData::Rt(r) => json!({
            "preference": r.preference,
            "host": name_with_dot(&r.host),
        }),
        RData::Talink(t) => json!({
            "previous": name_with_dot(&t.previous),
            "next": name_with_dot(&t.next),
        }),
        RData::Ds(d) | RData::Cds(d) => json!({
            "key_tag": d.key_tag,
            "algorithm": d.algorithm,
            "digest_type": d.digest_type,
            "digest": hex(&d.digest),
        }),
        RData::Dnskey(k) | RData::Cdnskey(k) | RData::Key(k) => json!({
            "flags": k.flags,
            "protocol": k.protocol,
            "algorithm": k.algorithm,
            "public_key": b64(&k.public_key),
        }),
        RData::Rrsig(s) => json!({
            "type_covered": s.type_covered.to_string(),
            "algorithm": s.algorithm,
            "labels": s.labels,
            "original_ttl": s.original_ttl,
            "expiration": s.expiration,
            "inception": s.inception,
            "key_tag": s.key_tag,
            "signer_name": name_with_dot(&s.signer),
            "signature": b64(&s.signature),
        }),
        RData::Nsec(n) => json!({
            "next_domain": name_with_dot(&n.next),
            "type_bitmap": n.types.types().iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        }),
        RData::Nsec3(n) => json!({
            "algorithm": n.algorithm,
            "flags": n.flags,
            "iterations": n.iterations,
            "salt": hex(&n.salt),
            "next_hashed_owner": b64(&n.next_hashed),
            "type_bitmap": n.types.types().iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        }),
        RData::Nsec3Param(n) => json!({
            "algorithm": n.algorithm,
            "flags": n.flags,
            "iterations": n.iterations,
            "salt": hex(&n.salt),
        }),
        RData::Csync(c) => json!({
            "serial": c.serial,
            "flags": c.flags,
            "type_bitmap": c.types.types().iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        }),
        RData::Nxt(n) => json!({
            "next_domain": name_with_dot(&n.next),
            "bitmap": hex(&n.bitmap),
        }),
        RData::Hinfo(h) => json!({
            "cpu": String::from_utf8_lossy(&h.cpu),
            "os": String::from_utf8_lossy(&h.os),
        }),
        RData::Isdn(i) => json!({
            "address": String::from_utf8_lossy(&i.address),
            "subaddress": i.subaddress.as_deref().map(String::from_utf8_lossy),
        }),
        RData::Gpos(g) => json!({
            "longitude": String::from_utf8_lossy(&g.longitude),
            "latitude": String::from_utf8_lossy(&g.latitude),
            "altitude": String::from_utf8_lossy(&g.altitude),
        }),
        RData::Loc(l) => json!({
            "version": l.version,
            "size": l.size,
            "horizontal_precision": l.horiz_pre,
            "vertical_precision": l.vert_pre,
            "latitude": l.latitude,
            "longitude": l.longitude,
            "altitude": l.altitude,
        }),
        RData::Uri(u) => json!({
            "priority": u.priority,
            "weight": u.weight,
            "target": String::from_utf8_lossy(&u.target),
        }),
        RData::Caa(c) => json!({
            "flag": c.flags,
            "tag": String::from_utf8_lossy(&c.tag),
            "value": String::from_utf8_lossy(&c.value),
        }),
        RData::Cert(c) => json!({
            "type": c.cert_type,
            "key_tag": c.key_tag,
            "algorithm": c.algorithm,
            "certificate": b64(&c.certificate),
        }),
        RData::Sshfp(s) => json!({
            "algorithm": s.algorithm,
            "fingerprint_type": s.fp_type,
            "fingerprint": hex(&s.fingerprint),
        }),
        RData::Tlsa(t) | RData::Smimea(t) => json!({
            "cert_usage": t.usage,
            "selector": t.selector,
            "matching_type": t.matching_type,
            "certificate": hex(&t.cert_data),
        }),
        RData::Hip(h) => json!({
            "pk_algorithm": h.pk_algorithm,
            "hit": hex(&h.hit),
            "public_key": b64(&h.public_key),
            "rendezvous_servers": h.rendezvous.iter().map(name_with_dot).collect::<Vec<_>>(),
        }),
        RData::Tkey(t) => json!({
            "algorithm": name_with_dot(&t.algorithm),
            "inception": t.inception,
            "expiration": t.expiration,
            "mode": t.mode,
            "error": t.error,
            "key": b64(&t.key),
        }),
        RData::Svcb(s) | RData::Https(s) => json!({
            "priority": s.priority,
            "target": name_with_dot(&s.target),
            "params": s.params.iter()
                .map(|(k, v)| (k.to_string(), Value::String(b64(v))))
                .collect::<Map<String, Value>>(),
        }),
        RData::L32(l) => json!({
            "preference": l.preference,
            "locator": l.locator.to_string(),
        }),
        RData::L64(l) => json!({
            "preference": l.preference,
            "locator": format!("{:x}", l.locator),
        }),
        RData::Nid(n) => json!({
            "preference": n.preference,
            "node_id": format!("{:x}", n.node_id),
        }),
        RData::Lp(l) => json!({
            "preference": l.preference,
            "fqdn": name_with_dot(&l.fqdn),
        }),
        RData::Eui48(b) => json!(b
            .iter()
            .map(|x| format!("{x:02x}"))
            .collect::<Vec<_>>()
            .join("-")),
        RData::Eui64(b) => json!(b
            .iter()
            .map(|x| format!("{x:02x}"))
            .collect::<Vec<_>>()
            .join("-")),
        RData::Opaque(b) => json!(b64(b)),
    }
}

/// Render one record the way ZDNS prints answers/authorities/additionals.
pub fn record_to_json(rec: &Record) -> Value {
    json!({
        "answer": answer_value(&rec.rdata),
        "class": rec.class.as_str(),
        "name": rec.name.to_string(),
        "ttl": rec.ttl,
        "type": rec.rtype.to_string(),
    })
}

/// Render header flags the way ZDNS reports them.
pub fn flags_to_json(flags: &Flags, rcode: Rcode) -> Value {
    json!({
        "authenticated": flags.authenticated,
        "authoritative": flags.authoritative,
        "checking_disabled": flags.checking_disabled,
        "error_code": rcode.to_u16(),
        "opcode": flags.opcode.0.to_u8(),
        "recursion_available": flags.recursion_available,
        "recursion_desired": flags.recursion_desired,
        "response": flags.response,
        "truncated": flags.truncated,
    })
}

/// Render a whole response message: the `results` object in a trace step or
/// the `data` object at the top level of a lookup result.
pub fn message_to_json(msg: &Message, protocol: &str, resolver: &str) -> Value {
    let mut obj = Map::new();
    if !msg.answers.is_empty() {
        obj.insert(
            "answers".into(),
            Value::Array(msg.answers.iter().map(record_to_json).collect()),
        );
    }
    if !msg.authorities.is_empty() {
        obj.insert(
            "authorities".into(),
            Value::Array(msg.authorities.iter().map(record_to_json).collect()),
        );
    }
    if !msg.additionals.is_empty() {
        obj.insert(
            "additionals".into(),
            Value::Array(msg.additionals.iter().map(record_to_json).collect()),
        );
    }
    obj.insert("flags".into(), flags_to_json(&msg.flags, msg.rcode()));
    obj.insert("protocol".into(), json!(protocol));
    obj.insert("resolver".into(), json!(resolver));
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::{Mx, TxtData};
    use std::net::Ipv4Addr;

    #[test]
    fn a_record_json_shape() {
        let rec = Record::new(
            "a.gtld-servers.net".parse().unwrap(),
            172800,
            RData::A(Ipv4Addr::new(192, 5, 6, 30)),
        );
        let v = record_to_json(&rec);
        assert_eq!(v["answer"], "192.5.6.30");
        assert_eq!(v["class"], "IN");
        assert_eq!(v["name"], "a.gtld-servers.net");
        assert_eq!(v["ttl"], 172800);
        assert_eq!(v["type"], "A");
    }

    #[test]
    fn ns_answer_has_trailing_dot() {
        let rec = Record::new(
            "com".parse().unwrap(),
            172800,
            RData::Ns("f.gtld-servers.net".parse().unwrap()),
        );
        let v = record_to_json(&rec);
        assert_eq!(v["answer"], "f.gtld-servers.net.");
    }

    #[test]
    fn mx_answer_is_structured() {
        let rec = Record::new(
            "example.com".parse().unwrap(),
            300,
            RData::Mx(Mx {
                preference: 10,
                exchange: "mail.example.com".parse().unwrap(),
            }),
        );
        let v = record_to_json(&rec);
        assert_eq!(v["answer"]["preference"], 10);
        assert_eq!(v["answer"]["name"], "mail.example.com.");
    }

    #[test]
    fn txt_answer_joined() {
        let rec = Record::new(
            "example.com".parse().unwrap(),
            300,
            RData::Txt(TxtData {
                strings: vec![b"v=spf1 ".to_vec(), b"-all".to_vec()],
            }),
        );
        assert_eq!(record_to_json(&rec)["answer"], "v=spf1 -all");
    }

    #[test]
    fn flags_json_shape_matches_appendix_c() {
        let flags = Flags {
            response: true,
            authoritative: true,
            ..Flags::default()
        };
        let v = flags_to_json(&flags, Rcode::NoError);
        for key in [
            "authenticated",
            "authoritative",
            "checking_disabled",
            "error_code",
            "opcode",
            "recursion_available",
            "recursion_desired",
            "response",
            "truncated",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(v["error_code"], 0);
        assert_eq!(v["authoritative"], true);
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(b64(b""), "");
        assert_eq!(b64(b"f"), "Zg==");
        assert_eq!(b64(b"fo"), "Zm8=");
        assert_eq!(b64(b"foo"), "Zm9v");
        assert_eq!(b64(b"foob"), "Zm9vYg==");
        assert_eq!(b64(b"fooba"), "Zm9vYmE=");
        assert_eq!(b64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn message_json_sections() {
        let mut m = Message::default();
        m.flags.response = true;
        m.answers.push(Record::new(
            "google.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(216, 58, 195, 78)),
        ));
        let v = message_to_json(&m, "udp", "216.239.34.10:53");
        assert_eq!(v["protocol"], "udp");
        assert_eq!(v["resolver"], "216.239.34.10:53");
        assert_eq!(v["answers"][0]["answer"], "216.58.195.78");
        assert!(v.get("authorities").is_none());
    }
}
