//! Record types and classes.
//!
//! Covers every type the paper's footnote lists as supported by ZDNS, plus
//! the pseudo-types needed on the wire (OPT) and in queries (ANY, AXFR).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

macro_rules! record_types {
    ($(($variant:ident, $num:expr, $name:expr),)*) => {
        /// A DNS RR TYPE (or QTYPE).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum RecordType {
            $(#[doc = $name] $variant,)*
            /// Any type observed on the wire that we do not model.
            Unknown(u16),
        }

        impl RecordType {
            /// The 16-bit wire value.
            pub fn to_u16(self) -> u16 {
                match self {
                    $(RecordType::$variant => $num,)*
                    RecordType::Unknown(v) => v,
                }
            }

            /// Decode from the 16-bit wire value.
            pub fn from_u16(v: u16) -> RecordType {
                match v {
                    $($num => RecordType::$variant,)*
                    other => RecordType::Unknown(other),
                }
            }

            /// The presentation name (`"A"`, `"AAAA"`, ...).
            pub fn as_str(self) -> &'static str {
                match self {
                    $(RecordType::$variant => $name,)*
                    RecordType::Unknown(_) => "TYPE",
                }
            }

            /// Every concretely named type (used to enumerate raw modules).
            pub fn all() -> &'static [RecordType] {
                &[$(RecordType::$variant,)*]
            }
        }

        impl FromStr for RecordType {
            type Err = ();

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let upper = s.to_ascii_uppercase();
                match upper.as_str() {
                    $($name => Ok(RecordType::$variant),)*
                    _ => {
                        // RFC 3597 presentation: TYPE1234
                        if let Some(num) = upper.strip_prefix("TYPE") {
                            num.parse::<u16>().map(RecordType::from_u16).map_err(|_| ())
                        } else {
                            Err(())
                        }
                    }
                }
            }
        }
    };
}

record_types! {
    (A, 1, "A"),
    (NS, 2, "NS"),
    (MD, 3, "MD"),
    (MF, 4, "MF"),
    (CNAME, 5, "CNAME"),
    (SOA, 6, "SOA"),
    (MB, 7, "MB"),
    (MG, 8, "MG"),
    (MR, 9, "MR"),
    (NULL, 10, "NULL"),
    (PTR, 12, "PTR"),
    (HINFO, 13, "HINFO"),
    (MX, 15, "MX"),
    (TXT, 16, "TXT"),
    (RP, 17, "RP"),
    (AFSDB, 18, "AFSDB"),
    (ISDN, 20, "ISDN"),
    (RT, 21, "RT"),
    (NSAPPTR, 23, "NSAPPTR"),
    (KEY, 25, "KEY"),
    (PX, 26, "PX"),
    (GPOS, 27, "GPOS"),
    (AAAA, 28, "AAAA"),
    (LOC, 29, "LOC"),
    (NXT, 30, "NXT"),
    (EID, 31, "EID"),
    (SRV, 33, "SRV"),
    (ATMA, 34, "ATMA"),
    (NAPTR, 35, "NAPTR"),
    (KX, 36, "KX"),
    (CERT, 37, "CERT"),
    (DNAME, 39, "DNAME"),
    (OPT, 41, "OPT"),
    (DS, 43, "DS"),
    (SSHFP, 44, "SSHFP"),
    (RRSIG, 46, "RRSIG"),
    (NSEC, 47, "NSEC"),
    (DNSKEY, 48, "DNSKEY"),
    (DHCID, 49, "DHCID"),
    (NSEC3, 50, "NSEC3"),
    (NSEC3PARAM, 51, "NSEC3PARAM"),
    (TLSA, 52, "TLSA"),
    (SMIMEA, 53, "SMIMEA"),
    (HIP, 55, "HIP"),
    (NINFO, 56, "NINFO"),
    (TALINK, 58, "TALINK"),
    (CDS, 59, "CDS"),
    (CDNSKEY, 60, "CDNSKEY"),
    (OPENPGPKEY, 61, "OPENPGPKEY"),
    (CSYNC, 62, "CSYNC"),
    (SVCB, 64, "SVCB"),
    (HTTPS, 65, "HTTPS"),
    (SPF, 99, "SPF"),
    (UINFO, 100, "UINFO"),
    (UID, 101, "UID"),
    (GID, 102, "GID"),
    (UNSPEC, 103, "UNSPEC"),
    (NID, 104, "NID"),
    (L32, 105, "L32"),
    (L64, 106, "L64"),
    (LP, 107, "LP"),
    (EUI48, 108, "EUI48"),
    (EUI64, 109, "EUI64"),
    (TKEY, 249, "TKEY"),
    (TSIG, 250, "TSIG"),
    (AXFR, 252, "AXFR"),
    (ANY, 255, "ANY"),
    (URI, 256, "URI"),
    (CAA, 257, "CAA"),
    (AVC, 258, "AVC"),
}

impl RecordType {
    /// True for QTYPEs that can only appear in questions (ANY, AXFR) or in
    /// the additional section (OPT), never as cached answer data.
    pub fn is_pseudo(self) -> bool {
        matches!(
            self,
            RecordType::ANY | RecordType::AXFR | RecordType::OPT | RecordType::TSIG
        )
    }

    /// True for the infrastructure types the ZDNS selective cache stores
    /// (NS plus the glue address types; see §3.4 "Selective Caching").
    pub fn is_infrastructure(self) -> bool {
        matches!(self, RecordType::NS | RecordType::A | RecordType::AAAA)
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // RFC 3597 presentation for unknown types.
            RecordType::Unknown(v) => write!(f, "TYPE{v}"),
            other => f.write_str(other.as_str()),
        }
    }
}

impl Serialize for RecordType {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for RecordType {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse()
            .map_err(|_| serde::de::Error::custom(format!("unknown record type {s:?}")))
    }
}

/// A DNS CLASS (or QCLASS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordClass {
    /// The Internet.
    #[default]
    IN,
    /// Chaos — used by `version.bind` queries.
    CH,
    /// Hesiod.
    HS,
    /// QCLASS NONE (RFC 2136).
    None,
    /// QCLASS ANY.
    Any,
    /// Unmodelled class.
    Unknown(u16),
}

impl RecordClass {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::IN => 1,
            RecordClass::CH => 3,
            RecordClass::HS => 4,
            RecordClass::None => 254,
            RecordClass::Any => 255,
            RecordClass::Unknown(v) => v,
        }
    }

    /// Decode from the 16-bit wire value.
    pub fn from_u16(v: u16) -> RecordClass {
        match v {
            1 => RecordClass::IN,
            3 => RecordClass::CH,
            4 => RecordClass::HS,
            254 => RecordClass::None,
            255 => RecordClass::Any,
            other => RecordClass::Unknown(other),
        }
    }

    /// Presentation name.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordClass::IN => "IN",
            RecordClass::CH => "CH",
            RecordClass::HS => "HS",
            RecordClass::None => "NONE",
            RecordClass::Any => "ANY",
            RecordClass::Unknown(_) => "CLASS",
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::Unknown(v) => write!(f, "CLASS{v}"),
            other => f.write_str(other.as_str()),
        }
    }
}

impl FromStr for RecordClass {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "IN" => Ok(RecordClass::IN),
            "CH" | "CHAOS" => Ok(RecordClass::CH),
            "HS" | "HESIOD" => Ok(RecordClass::HS),
            "NONE" => Ok(RecordClass::None),
            "ANY" => Ok(RecordClass::Any),
            other => {
                if let Some(num) = other.strip_prefix("CLASS") {
                    num.parse::<u16>()
                        .map(RecordClass::from_u16)
                        .map_err(|_| ())
                } else {
                    Err(())
                }
            }
        }
    }
}

impl Serialize for RecordClass {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for RecordClass {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse()
            .map_err(|_| serde::de::Error::custom(format!("unknown record class {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_type_roundtrips_numerically() {
        for &t in RecordType::all() {
            assert_eq!(RecordType::from_u16(t.to_u16()), t, "{t:?}");
        }
    }

    #[test]
    fn every_named_type_roundtrips_textually() {
        for &t in RecordType::all() {
            let s = t.to_string();
            assert_eq!(s.parse::<RecordType>().unwrap(), t, "{s}");
        }
    }

    #[test]
    fn paper_footnote_types_present() {
        // The paper's footnote 1 lists the record types ZDNS can query and
        // parse. Every one of them must resolve to a concrete type here
        // (DMARC is a TXT-convention handled at the module layer).
        let listed = [
            "A",
            "AAAA",
            "AFSDB",
            "ANY",
            "ATMA",
            "AVC",
            "AXFR",
            "CAA",
            "CDNSKEY",
            "CDS",
            "CERT",
            "CNAME",
            "CSYNC",
            "DHCID",
            "DNSKEY",
            "DS",
            "EID",
            "EUI48",
            "EUI64",
            "GID",
            "GPOS",
            "HINFO",
            "HIP",
            "ISDN",
            "KEY",
            "KX",
            "L32",
            "L64",
            "LOC",
            "LP",
            "MB",
            "MD",
            "MF",
            "MG",
            "MR",
            "MX",
            "NAPTR",
            "NID",
            "NINFO",
            "NS",
            "NSAPPTR",
            "NSEC",
            "NSEC3",
            "NSEC3PARAM",
            "NXT",
            "OPENPGPKEY",
            "PTR",
            "PX",
            "RP",
            "RRSIG",
            "RT",
            "SMIMEA",
            "SOA",
            "SPF",
            "SRV",
            "SSHFP",
            "TALINK",
            "TKEY",
            "TLSA",
            "TXT",
            "UID",
            "UINFO",
            "UNSPEC",
            "URI",
        ];
        for name in listed {
            let t: RecordType = name.parse().unwrap_or_else(|_| panic!("missing {name}"));
            assert!(!matches!(t, RecordType::Unknown(_)), "{name}");
        }
        assert_eq!(listed.len(), 64);
    }

    #[test]
    fn unknown_type_presentation() {
        let t = RecordType::from_u16(4711);
        assert_eq!(t.to_string(), "TYPE4711");
        assert_eq!("TYPE4711".parse::<RecordType>().unwrap(), t);
    }

    #[test]
    fn class_roundtrip() {
        for v in [1u16, 3, 4, 254, 255, 42] {
            assert_eq!(RecordClass::from_u16(v).to_u16(), v);
        }
        assert_eq!("ch".parse::<RecordClass>().unwrap(), RecordClass::CH);
    }

    #[test]
    fn infrastructure_classification() {
        assert!(RecordType::NS.is_infrastructure());
        assert!(RecordType::A.is_infrastructure());
        assert!(RecordType::AAAA.is_infrastructure());
        assert!(!RecordType::PTR.is_infrastructure());
        assert!(!RecordType::TXT.is_infrastructure());
    }
}
