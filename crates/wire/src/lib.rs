//! # zdns-wire
//!
//! DNS wire-format codec for the ZDNS reproduction: domain names with
//! RFC 1035 compression, the full message model, EDNS(0), and typed RDATA
//! for every record type the ZDNS paper lists as supported (footnote 1).
//!
//! Design rules:
//!
//! * **Never panic on network input.** Every decode path is bounds-checked
//!   and returns [`WireError`]; property tests drive arbitrary bytes through
//!   [`Message::decode`].
//! * **Lenient reads, strict writes.** Unknown types decode as opaque RDATA
//!   (RFC 3597); compressed names are accepted anywhere but only emitted
//!   where RFC 1035 allows.
//! * **JSON is a first-class output.** [`json`] renders records and messages
//!   in the shape ZDNS prints (paper Appendix C).
//!
//! # Example
//!
//! [`Name`] is the codec's central type: labels in one inline buffer,
//! compared and hashed case-insensitively as RFC 1035 requires:
//!
//! ```
//! use zdns_wire::Name;
//!
//! let a: Name = "Example.COM".parse().unwrap();
//! let b: Name = "example.com.".parse().unwrap();
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]

mod buffer;
mod edns;
mod error;
mod header;
pub mod json;
mod message;
mod name;
mod question;
pub mod rdata;
mod record;
mod rtype;
mod view;

pub use buffer::{ScratchBuf, WireReader, WireWriter, MAX_MESSAGE_SIZE};
pub use edns::{
    cookie_option_len, write_cookie_option, Cookie, Edns, CLIENT_COOKIE_LEN, DEFAULT_UDP_PAYLOAD,
    MAX_COOKIE_LEN, OPTION_COOKIE,
};
pub use error::{WireError, WireResult};
pub use header::{Flags, Header, Opcode, OpcodeField, Rcode};
pub use message::{encode_query_into, Message, RcodeField};
pub use name::{LabelIter, Name, INLINE_NAME_LEN, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use question::Question;
pub use rdata::RData;
pub use record::Record;
pub use rtype::{RecordClass, RecordType};
pub use view::{
    min_answer_ttl, MessageView, MsgRef, NameRef, NameRefLabels, QuestionView, QuestionViews,
    RecordCursor, RecordEntry, RecordView, RecordViews,
};
