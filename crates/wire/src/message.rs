//! The full DNS message: header + four sections, with EDNS folded in.

use crate::buffer::{ScratchBuf, WireReader};
use crate::edns::{Cookie, Edns};
use crate::error::{WireError, WireResult};
use crate::header::{Flags, Header, Opcode, OpcodeField, Rcode};
use crate::question::Question;
use crate::record::Record;
use crate::rtype::RecordType;

/// A decoded (or to-be-encoded) DNS message.
///
/// The OPT pseudo-record is lifted out of the additional section into
/// [`Message::edns`]; the extended RCODE is combined into [`Message::rcode`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flag bits.
    pub flags: Flags,
    /// Full response code (extended bits included when EDNS is present).
    pub rcode: RcodeField,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (OPT removed).
    pub additionals: Vec<Record>,
    /// EDNS(0) data, if an OPT record was present / should be sent.
    pub edns: Option<Edns>,
}

/// Wrapper so `Message` can derive `Default` with `Rcode::NoError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcodeField(pub Rcode);

impl Default for RcodeField {
    fn default() -> Self {
        RcodeField(Rcode::NoError)
    }
}

impl Message {
    /// Build a query for `name`/`qtype` with EDNS attached, recursion
    /// desired off (the iterative resolver's default; external mode flips
    /// it on).
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            flags: Flags {
                opcode: OpcodeField(Opcode::Query),
                ..Flags::default()
            },
            questions: vec![question],
            edns: Some(Edns::default()),
            ..Message::default()
        }
    }

    /// First question, if any — the common case for responses.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.rcode.0
    }

    /// All answer-section records of the given type.
    pub fn answers_of(&self, rtype: RecordType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rtype == rtype)
    }

    /// Encode with no size limit (TCP) — the message may still not exceed
    /// 64 KiB.
    pub fn encode(&self) -> WireResult<Vec<u8>> {
        let mut scratch = ScratchBuf::new();
        self.encode_into(&mut scratch)?;
        Ok(scratch.take_bytes())
    }

    /// Encode for UDP: if the message exceeds `limit`, sections are dropped
    /// from the back until it fits and the TC bit is set, mirroring what
    /// authoritative servers do. Returns the bytes and whether truncation
    /// happened.
    pub fn encode_udp(&self, limit: usize) -> WireResult<(Vec<u8>, bool)> {
        let mut scratch = ScratchBuf::new();
        let truncated = self.encode_udp_into(&mut scratch, limit)?;
        Ok((scratch.take_bytes(), truncated))
    }

    /// Encode one message (no size limit) into `scratch` as a new message
    /// starting at the current write position. In the steady state the
    /// scratch buffer retains its capacity, so this path performs zero heap
    /// allocations. On error the partial message is rolled back.
    pub fn encode_into(&self, scratch: &mut ScratchBuf) -> WireResult<()> {
        scratch.begin_message();
        self.encode_dropping(scratch, 0, false).inspect_err(|_| {
            scratch.abort_message();
        })
    }

    /// [`Message::encode_into`] with a UDP size limit: drops trailing
    /// records and sets TC when the message would exceed `limit`. Returns
    /// whether truncation happened.
    pub fn encode_udp_into(&self, scratch: &mut ScratchBuf, limit: usize) -> WireResult<bool> {
        scratch.begin_message();
        let total_records = self.answers.len() + self.authorities.len() + self.additionals.len();
        let mut drop_records = 0usize;
        loop {
            match self.encode_dropping(scratch, drop_records, drop_records > 0) {
                Ok(()) => {}
                Err(e) => {
                    scratch.abort_message();
                    return Err(e);
                }
            }
            let encoded = scratch.message_bytes().len();
            if encoded > limit {
                if drop_records >= total_records {
                    // Even the bare header + question exceeds the limit;
                    // return it truncated anyway (matches BIND).
                    return Ok(true);
                }
                drop_records += ((encoded - limit) / 64).max(1);
                drop_records = drop_records.min(total_records);
                // Re-encode the same message from its start.
                scratch.abort_message();
                scratch.begin_message();
            } else {
                return Ok(drop_records > 0);
            }
        }
    }

    /// Encode while dropping the last `drop` records (additionals first,
    /// then authorities, then answers) and optionally forcing TC.
    fn encode_dropping(&self, w: &mut ScratchBuf, drop: usize, truncated: bool) -> WireResult<()> {
        let keep = |section: &[Record], already_dropped: usize, drop: usize| -> usize {
            let to_drop = drop.saturating_sub(already_dropped);
            section.len().saturating_sub(to_drop)
        };
        // Drop order: additionals, then authorities, then answers.
        let keep_add = keep(&self.additionals, 0, drop);
        let dropped_add = self.additionals.len() - keep_add;
        let keep_auth = keep(&self.authorities, dropped_add, drop);
        let dropped_auth = self.authorities.len() - keep_auth;
        let keep_ans = keep(&self.answers, dropped_add + dropped_auth, drop);

        let rcode_val = self.rcode.0.to_u16();
        let mut flags = self.flags;
        flags.truncated = flags.truncated || truncated;
        let header = Header {
            id: self.id,
            flags,
            rcode_low: (rcode_val & 0x0F) as u8,
            qdcount: self.questions.len() as u16,
            ancount: keep_ans as u16,
            nscount: keep_auth as u16,
            arcount: (keep_add + usize::from(self.edns.is_some())) as u16,
        };
        header.encode(w)?;
        for q in &self.questions {
            q.encode(w)?;
        }
        for rec in &self.answers[..keep_ans] {
            rec.encode(w)?;
        }
        for rec in &self.authorities[..keep_auth] {
            rec.encode(w)?;
        }
        for rec in &self.additionals[..keep_add] {
            rec.encode(w)?;
        }
        if let Some(edns) = &self.edns {
            let mut edns = edns.clone();
            edns.extended_rcode = (rcode_val >> 4) as u8;
            edns.encode(w)?;
        }
        Ok(())
    }

    /// Decode a full message. Unknown record types decode as opaque; a
    /// malformed record aborts the whole message (the ZDNS framework maps
    /// that to a parse-error status for the lookup).
    pub fn decode(bytes: &[u8]) -> WireResult<Message> {
        let mut r = WireReader::new(bytes);
        let header = Header::decode(&mut r)?;
        // Each question needs ≥5 bytes, each record ≥11; reject impossible
        // counts before allocating.
        let min_needed = header.qdcount as usize * 5
            + (header.ancount as usize + header.nscount as usize + header.arcount as usize) * 11;
        if min_needed > r.remaining() {
            return Err(WireError::CountMismatch { section: "header" });
        }
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(&mut r)?);
        }
        let mut answers = Vec::with_capacity(header.ancount as usize);
        for _ in 0..header.ancount {
            answers.push(Record::decode(&mut r)?);
        }
        let mut authorities = Vec::with_capacity(header.nscount as usize);
        for _ in 0..header.nscount {
            authorities.push(Record::decode(&mut r)?);
        }
        let mut additionals = Vec::new();
        let mut edns = None;
        for _ in 0..header.arcount {
            // OPT needs special handling because its fixed fields are
            // repurposed; peek at the type before committing.
            let before = r.position();
            let name = r.read_name()?;
            let rtype = RecordType::from_u16(r.read_u16("record type")?);
            if rtype == RecordType::OPT {
                if !name.is_root() {
                    return Err(WireError::InvalidValue {
                        field: "OPT owner name",
                    });
                }
                // Later OPT wins is a protocol violation; first one counts.
                let parsed = Edns::decode_body(&mut r)?;
                if edns.is_none() {
                    edns = Some(parsed);
                }
            } else {
                r.seek(before)?;
                additionals.push(Record::decode(&mut r)?);
            }
        }
        let rcode_val = match &mut edns {
            Some(e) => {
                let combined = (e.extended_rcode as u16) << 4 | header.rcode_low as u16;
                // The extended bits live in Message::rcode from here on;
                // zero them in the lifted OPT so re-encoding is idempotent.
                e.extended_rcode = 0;
                combined
            }
            None => header.rcode_low as u16,
        };
        Ok(Message {
            id: header.id,
            flags: header.flags,
            rcode: RcodeField(Rcode::from_u16(rcode_val)),
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

/// Encode a standard query — header, one question, and a default OPT
/// (optionally carrying a DNS [`Cookie`]) — straight into `scratch`,
/// without constructing a [`Message`]. This is the reactor's send path:
/// in the steady state it performs zero heap allocations.
///
/// The encoded bytes are identical to
/// `Message::query(id, question)` with `recursion_desired` applied and the
/// cookie attached via [`Edns::set_cookie`].
pub fn encode_query_into(
    scratch: &mut ScratchBuf,
    id: u16,
    question: &Question,
    recursion_desired: bool,
    cookie: Option<&Cookie>,
) -> WireResult<()> {
    scratch.begin_message();
    let result = (|| {
        let header = Header {
            id,
            flags: Flags {
                recursion_desired,
                ..Flags::default()
            },
            rcode_low: 0,
            qdcount: 1,
            ancount: 0,
            nscount: 0,
            arcount: 1,
        };
        header.encode(scratch)?;
        question.encode(scratch)?;
        Edns::encode_query_opt(scratch, cookie)
    })();
    result.inspect_err(|_| scratch.abort_message())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;
    use crate::rdata::RData;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let mut m = Message::query(
            0x1234,
            Question::new("google.com".parse().unwrap(), RecordType::A),
        );
        m.flags.response = true;
        m.flags.authoritative = true;
        m.answers.push(Record::new(
            "google.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(216, 58, 195, 78)),
        ));
        m.authorities.push(Record::new(
            "google.com".parse().unwrap(),
            172800,
            RData::Ns("ns1.google.com".parse().unwrap()),
        ));
        m.additionals.push(Record::new(
            "ns1.google.com".parse().unwrap(),
            172800,
            RData::A(Ipv4Addr::new(216, 239, 32, 10)),
        ));
        m
    }

    #[test]
    fn message_roundtrip() {
        let m = sample_response();
        let bytes = m.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn query_has_edns() {
        let q = Message::query(
            1,
            Question::new("example.com".parse().unwrap(), RecordType::MX),
        );
        let bytes = q.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert!(decoded.edns.is_some());
        assert!(!decoded.flags.recursion_desired);
    }

    #[test]
    fn extended_rcode_roundtrip() {
        let mut m = sample_response();
        m.rcode = RcodeField(Rcode::BadVers); // 16: needs the OPT extension
        let bytes = m.encode().unwrap();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded.rcode(), Rcode::BadVers);
    }

    #[test]
    fn udp_truncation_sets_tc_and_fits() {
        let mut m = sample_response();
        // Fill with enough answers that 512 bytes cannot hold them.
        for i in 0..100u32 {
            m.answers.push(Record::new(
                "google.com".parse().unwrap(),
                300,
                RData::A(Ipv4Addr::from(0x0A00_0000 + i)),
            ));
        }
        let (bytes, truncated) = m.encode_udp(512).unwrap();
        assert!(truncated);
        assert!(bytes.len() <= 512);
        let decoded = Message::decode(&bytes).unwrap();
        assert!(decoded.flags.truncated);
        // TCP encoding holds everything.
        let full = m.encode().unwrap();
        let decoded_full = Message::decode(&full).unwrap();
        assert_eq!(decoded_full.answers.len(), 101);
        assert!(!decoded_full.flags.truncated);
    }

    #[test]
    fn encode_into_appends_independent_messages() {
        let m = sample_response();
        let one_shot = m.encode().unwrap();
        let mut scratch = ScratchBuf::new();
        m.encode_into(&mut scratch).unwrap();
        let first_end = scratch.len();
        m.encode_into(&mut scratch).unwrap();
        // Both copies decode identically: compression never points across
        // the message boundary.
        assert_eq!(&scratch.as_slice()[..first_end], &one_shot[..]);
        assert_eq!(
            Message::decode(&scratch.as_slice()[first_end..]).unwrap(),
            m
        );
    }

    #[test]
    fn encode_query_into_matches_owned_builder() {
        let question = Question::new("www.Example.COM".parse().unwrap(), RecordType::A);
        let cookie = Cookie::client([7, 6, 5, 4, 3, 2, 1, 0]);
        for (rd, cookie) in [(false, None), (true, Some(cookie))] {
            let mut owned = Message::query(0xABCD, question.clone());
            owned.flags.recursion_desired = rd;
            if let (Some(c), Some(e)) = (cookie.as_ref(), owned.edns.as_mut()) {
                e.set_cookie(*c);
            }
            let expected = owned.encode().unwrap();
            let mut scratch = ScratchBuf::new();
            encode_query_into(&mut scratch, 0xABCD, &question, rd, cookie.as_ref()).unwrap();
            assert_eq!(scratch.as_slice(), &expected[..]);
        }
    }

    #[test]
    fn bogus_counts_rejected_without_huge_alloc() {
        // Header claiming 65535 answers in a 12-byte message.
        let mut bytes = vec![0u8; 12];
        bytes[6] = 0xFF;
        bytes[7] = 0xFF;
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::CountMismatch { .. })
        ));
    }

    #[test]
    fn opt_with_nonroot_owner_rejected() {
        // Build a message whose OPT record has a non-root owner.
        let mut w = WireWriter::new();
        Header {
            id: 1,
            arcount: 1,
            ..Header::default()
        }
        .encode(&mut w)
        .unwrap();
        w.write_name(&"x.example".parse().unwrap()).unwrap();
        w.write_u16(RecordType::OPT.to_u16()).unwrap();
        w.write_u16(1232).unwrap();
        w.write_u32(0).unwrap();
        w.write_u16(0).unwrap();
        let bytes = w.finish();
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn decode_arbitrary_prefix_never_panics() {
        let m = sample_response();
        let bytes = m.encode().unwrap();
        for cut in 0..bytes.len() {
            let _ = Message::decode(&bytes[..cut]);
        }
    }
}
