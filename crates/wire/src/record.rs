//! A resource record: owner name, type, class, TTL, and typed RDATA.

use crate::buffer::{ScratchBuf, WireReader};
use crate::error::WireResult;
use crate::name::Name;
use crate::rdata::RData;
use crate::rtype::{RecordClass, RecordType};

/// One resource record as it appears in the answer, authority, or
/// additional section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record type. Kept separate from the RData so records decoded as
    /// [`RData::Opaque`] remember what they were.
    pub rtype: RecordType,
    /// Record class.
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// Build a record, deriving the type from the RDATA.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            rtype: rdata.natural_type(),
            class: RecordClass::IN,
            ttl,
            rdata,
        }
    }

    /// Encode the full record, patching RDLENGTH after the fact.
    pub fn encode(&self, w: &mut ScratchBuf) -> WireResult<()> {
        w.write_name(&self.name)?;
        w.write_u16(self.rtype.to_u16())?;
        w.write_u16(self.class.to_u16())?;
        w.write_u32(self.ttl)?;
        let len_pos = w.len();
        w.write_u16(0)?;
        let rdata_start = w.len();
        self.rdata.encode(w)?;
        let rdlen = w.len() - rdata_start;
        w.patch_u16(len_pos, rdlen as u16);
        Ok(())
    }

    /// Decode one record.
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<Record> {
        let name = r.read_name()?;
        let rtype = RecordType::from_u16(r.read_u16("record type")?);
        let class = RecordClass::from_u16(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("rdlength")? as usize;
        let rdata = RData::decode(rtype, rdlen, r)?;
        Ok(Record {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::WireWriter;
    use std::net::Ipv4Addr;

    #[test]
    fn record_roundtrip() {
        let rec = Record::new(
            "google.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(142, 250, 188, 14)),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
        assert!(r.is_empty());
    }

    #[test]
    fn new_derives_type() {
        let rec = Record::new(
            "example.com".parse().unwrap(),
            60,
            RData::Ns("ns1.example.com".parse().unwrap()),
        );
        assert_eq!(rec.rtype, RecordType::NS);
    }

    #[test]
    fn rdlength_patched_correctly() {
        let rec = Record::new(
            "example.com".parse().unwrap(),
            60,
            RData::Txt(crate::rdata::TxtData::from_text("hello world")),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w).unwrap();
        let bytes = w.finish();
        // name(13) + type(2) + class(2) + ttl(4) = 21; rdlength at 21..23.
        let rdlen = u16::from_be_bytes([bytes[21], bytes[22]]) as usize;
        assert_eq!(rdlen, 12); // 1 length octet + 11 text octets
        assert_eq!(bytes.len(), 23 + rdlen);
    }
}
