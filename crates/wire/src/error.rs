//! Wire-format error type.
//!
//! Internet servers regularly return malformed responses (misconfiguration or
//! malice — see §3.1 of the paper), so every decode path returns a structured
//! error instead of panicking. Property tests feed arbitrary bytes through the
//! decoder to enforce this.

use std::fmt;

/// Errors produced while encoding or decoding DNS wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran off the end of the buffer while reading.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A domain name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets on the wire.
    NameTooLong(usize),
    /// A compression pointer pointed at or past its own position, or the
    /// pointer chain exceeded the hop limit.
    BadPointer {
        /// Offset the pointer referenced.
        target: usize,
    },
    /// A label type other than `00` (literal) or `11` (pointer) was seen.
    UnsupportedLabelType(u8),
    /// A count field (qdcount/ancount/...) promised more records than the
    /// message could possibly hold.
    CountMismatch {
        /// Which section had the bogus count.
        section: &'static str,
    },
    /// RDLENGTH disagreed with the actual encoded RDATA size.
    RdataLength {
        /// Declared length.
        declared: usize,
        /// Consumed length.
        consumed: usize,
    },
    /// A character-string exceeded 255 octets.
    CharStringTooLong(usize),
    /// A message exceeded the 64 KiB wire limit while encoding.
    MessageTooLong(usize),
    /// A value was out of domain for the field (e.g. invalid bitmap window).
    InvalidValue {
        /// Field description.
        field: &'static str,
    },
    /// Text form of a name could not be parsed.
    BadNameText(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "message truncated while reading {context}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadPointer { target } => {
                write!(f, "invalid compression pointer to offset {target}")
            }
            WireError::UnsupportedLabelType(b) => {
                write!(f, "unsupported label type bits {b:#04x}")
            }
            WireError::CountMismatch { section } => {
                write!(f, "record count exceeds message size in {section}")
            }
            WireError::RdataLength { declared, consumed } => {
                write!(
                    f,
                    "rdata length mismatch: declared {declared}, consumed {consumed}"
                )
            }
            WireError::CharStringTooLong(n) => {
                write!(f, "character-string of {n} octets exceeds 255")
            }
            WireError::MessageTooLong(n) => write!(f, "message of {n} octets exceeds 64 KiB"),
            WireError::InvalidValue { field } => write!(f, "invalid value for {field}"),
            WireError::BadNameText(s) => write!(f, "cannot parse name from text: {s:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used throughout the codec.
pub type WireResult<T> = Result<T, WireError>;
