//! Domain names.
//!
//! `Name` stores the label sequence exactly as received (case preserved for
//! display) but compares, hashes, and compresses case-insensitively, as DNS
//! requires (RFC 1035 §2.3.3, RFC 4343).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use crate::error::{WireError, WireResult};

/// Maximum octets in a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name as an ordered sequence of labels
/// (most-specific first; the root is the empty sequence).
#[derive(Debug, Clone, Default)]
pub struct Name {
    labels: Vec<Box<[u8]>>,
}

impl Name {
    /// The DNS root (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Build from raw labels, validating length limits.
    pub fn from_labels<I, L>(labels: I) -> WireResult<Self>
    where
        I: IntoIterator<Item = L>,
        L: Into<Box<[u8]>>,
    {
        let labels: Vec<Box<[u8]>> = labels.into_iter().map(Into::into).collect();
        let mut wire_len = 1usize;
        for l in &labels {
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            wire_len += l.len() + 1;
        }
        if wire_len > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire_len));
        }
        Ok(Name { labels })
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[Box<[u8]>] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Octets this name occupies on the wire, uncompressed.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The name with the most-specific label removed (`www.example.com` →
    /// `example.com`); the root's parent is the root.
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            return Name::root();
        }
        Name {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepend a label (`example.com`.child("www") → `www.example.com`).
    pub fn child(&self, label: &str) -> WireResult<Name> {
        let mut labels: Vec<Box<[u8]>> = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().into());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// True if `self` equals `other` or is beneath it
    /// (`www.example.com`.is_subdomain_of(`example.com`) == true).
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(other.labels.iter())
            .all(|(a, b)| eq_label(a, b))
    }

    /// Keep only the last `n` labels (`a.b.example.com`.suffix(2) →
    /// `example.com`).
    pub fn suffix(&self, n: usize) -> Name {
        let n = n.min(self.labels.len());
        Name {
            labels: self.labels[self.labels.len() - n..].to_vec(),
        }
    }

    /// Number of trailing labels shared with `other`.
    pub fn common_suffix_len(&self, other: &Name) -> usize {
        self.labels
            .iter()
            .rev()
            .zip(other.labels.iter().rev())
            .take_while(|(a, b)| eq_label(a, b))
            .count()
    }

    /// Canonical (lowercased) key for a label suffix, used by the
    /// compression table and cache keys.
    pub(crate) fn suffix_key(labels: &[Box<[u8]>]) -> Vec<u8> {
        let mut key = Vec::with_capacity(labels.iter().map(|l| l.len() + 1).sum());
        for l in labels {
            key.push(l.len() as u8);
            key.extend(l.iter().map(|b| b.to_ascii_lowercase()));
        }
        key
    }

    /// Lowercased dotted string without the trailing dot (root → `"."`).
    pub fn to_ascii_lower(&self) -> String {
        if self.labels.is_empty() {
            return ".".to_string();
        }
        let mut s = String::with_capacity(self.wire_len());
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push('.');
            }
            for &b in l.iter() {
                push_label_byte(&mut s, b.to_ascii_lowercase());
            }
        }
        s
    }

    /// The reverse-DNS name for an IPv4 address
    /// (`192.0.2.1` → `1.2.0.192.in-addr.arpa`).
    pub fn reverse_ipv4(addr: Ipv4Addr) -> Name {
        let o = addr.octets();
        let text = format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]);
        text.parse().expect("reverse name is always valid")
    }

    /// The reverse-DNS name for an IPv6 address (nibble format under
    /// `ip6.arpa`).
    pub fn reverse_ipv6(addr: Ipv6Addr) -> Name {
        let mut parts: Vec<String> = Vec::with_capacity(34);
        for byte in addr.octets().iter().rev() {
            parts.push(format!("{:x}", byte & 0x0f));
            parts.push(format!("{:x}", byte >> 4));
        }
        parts.push("ip6".into());
        parts.push("arpa".into());
        parts
            .join(".")
            .parse()
            .expect("reverse name is always valid")
    }
}

fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

fn push_label_byte(s: &mut String, b: u8) {
    // Present non-printable / special bytes in the RFC 4343 \DDD form so
    // malformed labels survive a round trip through text.
    match b {
        b'.' | b'\\' => {
            s.push('\\');
            s.push(b as char);
        }
        0x21..=0x7E => s.push(b as char),
        _ => {
            s.push('\\');
            s.push_str(&format!("{b:03}"));
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| eq_label(a, b))
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            state.write_u8(l.len() as u8);
            for &b in l.iter() {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences from
    /// the root down, case-insensitively.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.labels.iter().rev();
        let b = other.labels.iter().rev();
        for (la, lb) in a.zip(b) {
            let la: Vec<u8> = la.iter().map(|c| c.to_ascii_lowercase()).collect();
            let lb: Vec<u8> = lb.iter().map(|c| c.to_ascii_lowercase()).collect();
            match la.cmp(&lb) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            let mut s = String::new();
            for &b in l.iter() {
                push_label_byte(&mut s, b);
            }
            f.write_str(&s)?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = WireError;

    /// Parse a dotted name. Accepts an optional trailing dot; `.` and the
    /// empty string are the root. Supports `\.`, `\\`, and `\DDD` escapes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        // Strip one trailing root dot, but only if it is not escaped
        // (an odd number of preceding backslashes means `\.` is data).
        let s = match s.strip_suffix('.') {
            Some(head) => {
                let trailing_backslashes = head.bytes().rev().take_while(|&b| b == b'\\').count();
                if trailing_backslashes % 2 == 0 {
                    head
                } else {
                    s
                }
            }
            None => s,
        };
        let mut labels: Vec<Box<[u8]>> = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut chars = s.bytes().peekable();
        while let Some(b) = chars.next() {
            match b {
                b'.' => {
                    if current.is_empty() {
                        return Err(WireError::BadNameText(s.to_string()));
                    }
                    labels.push(std::mem::take(&mut current).into());
                }
                b'\\' => {
                    let next = chars
                        .next()
                        .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                    if next.is_ascii_digit() {
                        let d2 = chars
                            .next()
                            .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                        let d3 = chars
                            .next()
                            .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                        if !d2.is_ascii_digit() || !d3.is_ascii_digit() {
                            return Err(WireError::BadNameText(s.to_string()));
                        }
                        let val = (next - b'0') as u32 * 100
                            + (d2 - b'0') as u32 * 10
                            + (d3 - b'0') as u32;
                        if val > 255 {
                            return Err(WireError::BadNameText(s.to_string()));
                        }
                        current.push(val as u8);
                    } else {
                        current.push(next);
                    }
                }
                other => current.push(other),
            }
        }
        if current.is_empty() {
            return Err(WireError::BadNameText(s.to_string()));
        }
        labels.push(current.into());
        Name::from_labels(labels)
    }
}

impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Name = "WWW.Example.COM".parse().unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "WWW.Example.COM");
        assert_eq!(n.to_ascii_lower(), "www.example.com");
    }

    #[test]
    fn trailing_dot_accepted() {
        let a: Name = "example.com.".parse().unwrap();
        let b: Name = "example.com".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_forms() {
        assert!(Name::root().is_root());
        assert_eq!(".".parse::<Name>().unwrap(), Name::root());
        assert_eq!("".parse::<Name>().unwrap(), Name::root());
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn empty_label_rejected() {
        assert!("a..b".parse::<Name>().is_err());
        assert!(".a".parse::<Name>().is_err());
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a: Name = "ExAmPlE.CoM".parse().unwrap();
        let b: Name = "example.com".parse().unwrap();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn parent_and_child() {
        let n: Name = "www.example.com".parse().unwrap();
        assert_eq!(n.parent().to_string(), "example.com");
        assert_eq!(
            n.parent().child("mail").unwrap().to_string(),
            "mail.example.com"
        );
        assert_eq!(Name::root().parent(), Name::root());
    }

    #[test]
    fn subdomain_checks() {
        let sub: Name = "a.b.example.com".parse().unwrap();
        let apex: Name = "example.com".parse().unwrap();
        let other: Name = "example.org".parse().unwrap();
        assert!(sub.is_subdomain_of(&apex));
        assert!(sub.is_subdomain_of(&Name::root()));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!sub.is_subdomain_of(&other));
        assert!(!apex.is_subdomain_of(&sub));
    }

    #[test]
    fn label_length_limits() {
        let long = "a".repeat(64);
        assert!(long.parse::<Name>().is_err());
        let ok = "a".repeat(63);
        assert!(ok.parse::<Name>().is_ok());
    }

    #[test]
    fn name_length_limit() {
        // Four 63-octet labels = 4*64+1 = 257 > 255.
        let l = "a".repeat(63);
        let too_long = format!("{l}.{l}.{l}.{l}");
        assert!(too_long.parse::<Name>().is_err());
    }

    #[test]
    fn reverse_ipv4_name() {
        let n = Name::reverse_ipv4(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(n.to_string(), "1.2.0.192.in-addr.arpa");
    }

    #[test]
    fn reverse_ipv6_name() {
        let n = Name::reverse_ipv6("2001:db8::1".parse().unwrap());
        assert!(n.to_string().ends_with("ip6.arpa"));
        assert_eq!(n.label_count(), 34);
    }

    #[test]
    fn escaped_dot_roundtrip() {
        let n: Name = r"a\.b.example.com".parse().unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), r"a\.b.example.com");
        let reparsed: Name = n.to_string().parse().unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn decimal_escape_roundtrip() {
        let n: Name = r"a\000b.example".parse().unwrap();
        assert_eq!(n.labels()[0].as_ref(), b"a\x00b");
        let reparsed: Name = n.to_string().parse().unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn canonical_ordering() {
        let a: Name = "a.example".parse().unwrap();
        let b: Name = "z.a.example".parse().unwrap();
        let c: Name = "b.example".parse().unwrap();
        // RFC 4034 §6.1 canonical order: a.example < z.a.example < b.example
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn common_suffix() {
        let a: Name = "mail.example.com".parse().unwrap();
        let b: Name = "www.example.com".parse().unwrap();
        assert_eq!(a.common_suffix_len(&b), 2);
    }
}
