//! Domain names.
//!
//! `Name` stores the label sequence exactly as received (case preserved for
//! display) but compares, hashes, and compresses case-insensitively, as DNS
//! requires (RFC 1035 §2.3.3, RFC 4343).
//!
//! Storage is a single contiguous run of length-prefixed labels (the wire
//! form minus the trailing root octet), kept inline for names up to
//! [`INLINE_NAME_LEN`] octets and spilled to one heap allocation only for
//! longer names. Cloning, hashing, comparing, and slicing (`parent`,
//! `suffix`) are therefore allocation-free for virtually every real-world
//! name — the property the resolver's cache keys and per-query encode path
//! rely on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use crate::error::{WireError, WireResult};

/// Maximum octets in a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum octets of label storage (wire form minus the root octet).
const MAX_STORAGE: usize = MAX_NAME_LEN - 1;
/// Names whose label storage fits in this many octets stay inline (no heap
/// allocation at all). 54 octets covers e.g. a 52-character hostname.
pub const INLINE_NAME_LEN: usize = 54;
/// A name has at most 127 labels (each label costs ≥ 2 wire octets).
const MAX_LABELS: usize = 127;

#[derive(Clone)]
enum Storage {
    Inline {
        len: u8,
        data: [u8; INLINE_NAME_LEN],
    },
    Heap(Box<[u8]>),
}

/// A fully-qualified domain name as an ordered sequence of labels
/// (most-specific first; the root is the empty sequence).
#[derive(Clone)]
pub struct Name {
    /// Number of labels (0 for the root).
    count: u8,
    storage: Storage,
}

impl Default for Name {
    fn default() -> Self {
        Name::root()
    }
}

impl Name {
    /// The DNS root (`.`).
    pub fn root() -> Self {
        Name {
            count: 0,
            storage: Storage::Inline {
                len: 0,
                data: [0u8; INLINE_NAME_LEN],
            },
        }
    }

    /// Build from validated, length-prefixed label storage.
    fn from_storage(bytes: &[u8], count: usize) -> Name {
        debug_assert!(bytes.len() <= MAX_STORAGE && count <= MAX_LABELS);
        if bytes.len() <= INLINE_NAME_LEN {
            let mut data = [0u8; INLINE_NAME_LEN];
            data[..bytes.len()].copy_from_slice(bytes);
            Name {
                count: count as u8,
                storage: Storage::Inline {
                    len: bytes.len() as u8,
                    data,
                },
            }
        } else {
            Name {
                count: count as u8,
                storage: Storage::Heap(bytes.into()),
            }
        }
    }

    /// The raw length-prefixed label storage (wire form minus the root).
    #[inline]
    pub(crate) fn storage_bytes(&self) -> &[u8] {
        match &self.storage {
            Storage::Inline { len, data } => &data[..*len as usize],
            Storage::Heap(b) => b,
        }
    }

    /// Build from raw labels, validating length limits.
    pub fn from_labels<I, L>(labels: I) -> WireResult<Self>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut buf = [0u8; MAX_STORAGE];
        let mut len = 0usize;
        let mut count = 0usize;
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            if len + 1 + l.len() > MAX_STORAGE || count >= MAX_LABELS {
                return Err(WireError::NameTooLong(len + 1 + l.len() + 1));
            }
            buf[len] = l.len() as u8;
            buf[len + 1..len + 1 + l.len()].copy_from_slice(l);
            len += 1 + l.len();
            count += 1;
        }
        Ok(Name::from_storage(&buf[..len], count))
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> LabelIter<'_> {
        LabelIter {
            rest: self.storage_bytes(),
            remaining: self.count as usize,
        }
    }

    /// The `i`-th label (0 = most specific), if present.
    pub fn label(&self, i: usize) -> Option<&[u8]> {
        self.labels().nth(i)
    }

    /// Byte offset of each label's length octet within the storage.
    /// Returns the number of labels written into `out`.
    fn label_offsets(&self, out: &mut [u8; MAX_LABELS]) -> usize {
        let bytes = self.storage_bytes();
        let mut pos = 0usize;
        let mut n = 0usize;
        while pos < bytes.len() && n < MAX_LABELS {
            out[n] = pos as u8;
            n += 1;
            pos += 1 + bytes[pos] as usize;
        }
        n
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.count as usize
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.count == 0
    }

    /// Octets this name occupies on the wire, uncompressed.
    pub fn wire_len(&self) -> usize {
        self.storage_bytes().len() + 1
    }

    /// Byte-exact comparison, unlike `Eq`/`Hash` which are
    /// case-insensitive per RFC 1035. `Name` preserves the spelling it was
    /// built with, and a DNS response must echo the client's question
    /// exactly (0x20 mixed-case is a real-world spoofing defence) — the
    /// serve-path packet cache keys hits on this, not on `==`.
    #[inline]
    pub fn eq_exact_case(&self, other: &Name) -> bool {
        self.storage_bytes() == other.storage_bytes()
    }

    /// The name with the most-specific label removed (`www.example.com` →
    /// `example.com`); the root's parent is the root.
    pub fn parent(&self) -> Name {
        let bytes = self.storage_bytes();
        if bytes.is_empty() {
            return Name::root();
        }
        let first = 1 + bytes[0] as usize;
        Name::from_storage(&bytes[first..], self.count as usize - 1)
    }

    /// Prepend a label (`example.com`.child("www") → `www.example.com`).
    pub fn child(&self, label: &str) -> WireResult<Name> {
        let l = label.as_bytes();
        if l.is_empty() || l.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(l.len()));
        }
        let bytes = self.storage_bytes();
        let total = 1 + l.len() + bytes.len();
        if total > MAX_STORAGE || self.count as usize >= MAX_LABELS {
            return Err(WireError::NameTooLong(total + 1));
        }
        let mut buf = [0u8; MAX_STORAGE];
        buf[0] = l.len() as u8;
        buf[1..1 + l.len()].copy_from_slice(l);
        buf[1 + l.len()..total].copy_from_slice(bytes);
        Ok(Name::from_storage(&buf[..total], self.count as usize + 1))
    }

    /// True if `self` equals `other` or is beneath it
    /// (`www.example.com`.is_subdomain_of(`example.com`) == true).
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.count > self.count {
            return false;
        }
        let skip = (self.count - other.count) as usize;
        let mut offs = [0u8; MAX_LABELS];
        let n = self.label_offsets(&mut offs);
        let start = if skip == 0 {
            0
        } else if skip >= n {
            self.storage_bytes().len()
        } else {
            offs[skip] as usize
        };
        self.storage_bytes()[start..].eq_ignore_ascii_case(other.storage_bytes())
    }

    /// Keep only the last `n` labels (`a.b.example.com`.suffix(2) →
    /// `example.com`).
    pub fn suffix(&self, n: usize) -> Name {
        let n = n.min(self.count as usize);
        let skip = self.count as usize - n;
        if skip == 0 {
            return self.clone();
        }
        let mut offs = [0u8; MAX_LABELS];
        let total = self.label_offsets(&mut offs);
        let start = if skip >= total {
            self.storage_bytes().len()
        } else {
            offs[skip] as usize
        };
        Name::from_storage(&self.storage_bytes()[start..], n)
    }

    /// Number of trailing labels shared with `other`.
    pub fn common_suffix_len(&self, other: &Name) -> usize {
        let mut a_offs = [0u8; MAX_LABELS];
        let mut b_offs = [0u8; MAX_LABELS];
        let an = self.label_offsets(&mut a_offs);
        let bn = other.label_offsets(&mut b_offs);
        let a = self.storage_bytes();
        let b = other.storage_bytes();
        let mut shared = 0usize;
        while shared < an && shared < bn {
            let la = label_at(a, a_offs[an - 1 - shared] as usize);
            let lb = label_at(b, b_offs[bn - 1 - shared] as usize);
            if !la.eq_ignore_ascii_case(lb) {
                break;
            }
            shared += 1;
        }
        shared
    }

    /// Lowercased dotted string without the trailing dot (root → `"."`).
    pub fn to_ascii_lower(&self) -> String {
        if self.is_root() {
            return ".".to_string();
        }
        let mut s = String::with_capacity(self.wire_len());
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                s.push('.');
            }
            for &b in l.iter() {
                push_label_byte(&mut s, b.to_ascii_lowercase());
            }
        }
        s
    }

    /// The reverse-DNS name for an IPv4 address
    /// (`192.0.2.1` → `1.2.0.192.in-addr.arpa`).
    pub fn reverse_ipv4(addr: Ipv4Addr) -> Name {
        let o = addr.octets();
        let text = format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]);
        text.parse().expect("reverse name is always valid")
    }

    /// The reverse-DNS name for an IPv6 address (nibble format under
    /// `ip6.arpa`).
    pub fn reverse_ipv6(addr: Ipv6Addr) -> Name {
        let mut parts: Vec<String> = Vec::with_capacity(34);
        for byte in addr.octets().iter().rev() {
            parts.push(format!("{:x}", byte & 0x0f));
            parts.push(format!("{:x}", byte >> 4));
        }
        parts.push("ip6".into());
        parts.push("arpa".into());
        parts
            .join(".")
            .parse()
            .expect("reverse name is always valid")
    }
}

/// A builder that assembles a `Name` label by label on the stack — the
/// allocation-free path wire decoding ([`crate::WireReader::read_name`])
/// and the borrowed view decoder use.
#[derive(Debug)]
pub(crate) struct NameBuilder {
    buf: [u8; MAX_STORAGE],
    len: usize,
    count: usize,
}

impl NameBuilder {
    pub(crate) fn new() -> NameBuilder {
        NameBuilder {
            buf: [0u8; MAX_STORAGE],
            len: 0,
            count: 0,
        }
    }

    /// Append one label, enforcing the label and name limits.
    pub(crate) fn push(&mut self, label: &[u8]) -> WireResult<()> {
        if label.is_empty() || label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        if self.len + 1 + label.len() > MAX_STORAGE || self.count >= MAX_LABELS {
            return Err(WireError::NameTooLong(self.len + label.len() + 2));
        }
        self.buf[self.len] = label.len() as u8;
        self.buf[self.len + 1..self.len + 1 + label.len()].copy_from_slice(label);
        self.len += 1 + label.len();
        self.count += 1;
        Ok(())
    }

    /// Wire octets consumed so far (including the pending root octet).
    pub(crate) fn wire_len(&self) -> usize {
        self.len + 1
    }

    pub(crate) fn finish(&self) -> Name {
        Name::from_storage(&self.buf[..self.len], self.count)
    }
}

#[inline]
fn label_at(bytes: &[u8], off: usize) -> &[u8] {
    let len = bytes[off] as usize;
    &bytes[off + 1..off + 1 + len]
}

/// Iterator over a name's labels, most-specific first.
#[derive(Debug, Clone)]
pub struct LabelIter<'a> {
    rest: &'a [u8],
    remaining: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let len = self.rest[0] as usize;
        let label = &self.rest[1..1 + len];
        self.rest = &self.rest[1 + len..];
        self.remaining = self.remaining.saturating_sub(1);
        Some(label)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LabelIter<'_> {}

fn push_label_byte(s: &mut String, b: u8) {
    // Present non-printable / special bytes in the RFC 4343 \DDD form so
    // malformed labels survive a round trip through text.
    match b {
        b'.' | b'\\' => {
            s.push('\\');
            s.push(b as char);
        }
        0x21..=0x7E => s.push(b as char),
        _ => {
            s.push('\\');
            s.push_str(&format!("{b:03}"));
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Length octets are < 64, so ASCII lowercasing never touches them
        // and the whole storage can be compared in one pass.
        self.count == other.count
            && self
                .storage_bytes()
                .eq_ignore_ascii_case(other.storage_bytes())
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Same one-pass trick as `eq`: lowercasing leaves length octets
        // (< 64) unchanged, so hashing the lowercased storage hashes
        // `len, label-bytes` pairs exactly as the old per-label loop did.
        for &b in self.storage_bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences from
    /// the root down, case-insensitively.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut a_offs = [0u8; MAX_LABELS];
        let mut b_offs = [0u8; MAX_LABELS];
        let an = self.label_offsets(&mut a_offs);
        let bn = other.label_offsets(&mut b_offs);
        let a = self.storage_bytes();
        let b = other.storage_bytes();
        for i in 0..an.min(bn) {
            let la = label_at(a, a_offs[an - 1 - i] as usize);
            let lb = label_at(b, b_offs[bn - 1 - i] as usize);
            for j in 0..la.len().min(lb.len()) {
                match la[j].to_ascii_lowercase().cmp(&lb[j].to_ascii_lowercase()) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            match la.len().cmp(&lb.len()) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        an.cmp(&bn)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            let mut s = String::new();
            for &b in l.iter() {
                push_label_byte(&mut s, b);
            }
            f.write_str(&s)?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = WireError;

    /// Parse a dotted name. Accepts an optional trailing dot; `.` and the
    /// empty string are the root. Supports `\.`, `\\`, and `\DDD` escapes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        // Strip one trailing root dot, but only if it is not escaped
        // (an odd number of preceding backslashes means `\.` is data).
        let s = match s.strip_suffix('.') {
            Some(head) => {
                let trailing_backslashes = head.bytes().rev().take_while(|&b| b == b'\\').count();
                if trailing_backslashes % 2 == 0 {
                    head
                } else {
                    s
                }
            }
            None => s,
        };
        let mut builder = NameBuilder::new();
        let mut current = [0u8; MAX_LABEL_LEN + 1];
        let mut cur_len = 0usize;
        let push_byte = |current: &mut [u8], cur_len: &mut usize, b: u8| {
            // One slot of slack: the overflow is caught by `push` below.
            if *cur_len < current.len() {
                current[*cur_len] = b;
            }
            *cur_len += 1;
        };
        let mut chars = s.bytes().peekable();
        while let Some(b) = chars.next() {
            match b {
                b'.' => {
                    if cur_len == 0 {
                        return Err(WireError::BadNameText(s.to_string()));
                    }
                    if cur_len > MAX_LABEL_LEN {
                        return Err(WireError::LabelTooLong(cur_len));
                    }
                    builder.push(&current[..cur_len])?;
                    cur_len = 0;
                }
                b'\\' => {
                    let next = chars
                        .next()
                        .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                    if next.is_ascii_digit() {
                        let d2 = chars
                            .next()
                            .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                        let d3 = chars
                            .next()
                            .ok_or_else(|| WireError::BadNameText(s.to_string()))?;
                        if !d2.is_ascii_digit() || !d3.is_ascii_digit() {
                            return Err(WireError::BadNameText(s.to_string()));
                        }
                        let val = (next - b'0') as u32 * 100
                            + (d2 - b'0') as u32 * 10
                            + (d3 - b'0') as u32;
                        if val > 255 {
                            return Err(WireError::BadNameText(s.to_string()));
                        }
                        push_byte(&mut current, &mut cur_len, val as u8);
                    } else {
                        push_byte(&mut current, &mut cur_len, next);
                    }
                }
                other => push_byte(&mut current, &mut cur_len, other),
            }
        }
        if cur_len == 0 {
            return Err(WireError::BadNameText(s.to_string()));
        }
        if cur_len > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(cur_len));
        }
        builder.push(&current[..cur_len])?;
        Ok(builder.finish())
    }
}

impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Name = "WWW.Example.COM".parse().unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "WWW.Example.COM");
        assert_eq!(n.to_ascii_lower(), "www.example.com");
    }

    #[test]
    fn trailing_dot_accepted() {
        let a: Name = "example.com.".parse().unwrap();
        let b: Name = "example.com".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_forms() {
        assert!(Name::root().is_root());
        assert_eq!(".".parse::<Name>().unwrap(), Name::root());
        assert_eq!("".parse::<Name>().unwrap(), Name::root());
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn empty_label_rejected() {
        assert!("a..b".parse::<Name>().is_err());
        assert!(".a".parse::<Name>().is_err());
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a: Name = "ExAmPlE.CoM".parse().unwrap();
        let b: Name = "example.com".parse().unwrap();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn parent_and_child() {
        let n: Name = "www.example.com".parse().unwrap();
        assert_eq!(n.parent().to_string(), "example.com");
        assert_eq!(
            n.parent().child("mail").unwrap().to_string(),
            "mail.example.com"
        );
        assert_eq!(Name::root().parent(), Name::root());
    }

    #[test]
    fn subdomain_checks() {
        let sub: Name = "a.b.example.com".parse().unwrap();
        let apex: Name = "example.com".parse().unwrap();
        let other: Name = "example.org".parse().unwrap();
        assert!(sub.is_subdomain_of(&apex));
        assert!(sub.is_subdomain_of(&Name::root()));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!sub.is_subdomain_of(&other));
        assert!(!apex.is_subdomain_of(&sub));
    }

    #[test]
    fn subdomain_is_case_insensitive() {
        let sub: Name = "A.B.ExAmPle.COM".parse().unwrap();
        let apex: Name = "example.com".parse().unwrap();
        assert!(sub.is_subdomain_of(&apex));
    }

    #[test]
    fn label_length_limits() {
        let long = "a".repeat(64);
        assert!(long.parse::<Name>().is_err());
        let ok = "a".repeat(63);
        assert!(ok.parse::<Name>().is_ok());
    }

    #[test]
    fn name_length_limit() {
        // Four 63-octet labels = 4*64+1 = 257 > 255.
        let l = "a".repeat(63);
        let too_long = format!("{l}.{l}.{l}.{l}");
        assert!(too_long.parse::<Name>().is_err());
    }

    #[test]
    fn long_names_spill_to_heap_and_still_compare() {
        let l = "a".repeat(63);
        let long: Name = format!("{l}.{l}.{l}").parse().unwrap();
        assert_eq!(long.label_count(), 3);
        assert!(long.wire_len() > INLINE_NAME_LEN);
        let upper: Name = format!("{}.{l}.{l}", l.to_uppercase()).parse().unwrap();
        assert_eq!(long, upper);
        assert_eq!(long.parent().label_count(), 2);
        assert_eq!(long.suffix(1).to_string(), l);
    }

    #[test]
    fn reverse_ipv4_name() {
        let n = Name::reverse_ipv4(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(n.to_string(), "1.2.0.192.in-addr.arpa");
    }

    #[test]
    fn reverse_ipv6_name() {
        let n = Name::reverse_ipv6("2001:db8::1".parse().unwrap());
        assert!(n.to_string().ends_with("ip6.arpa"));
        assert_eq!(n.label_count(), 34);
    }

    #[test]
    fn escaped_dot_roundtrip() {
        let n: Name = r"a\.b.example.com".parse().unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), r"a\.b.example.com");
        let reparsed: Name = n.to_string().parse().unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn decimal_escape_roundtrip() {
        let n: Name = r"a\000b.example".parse().unwrap();
        assert_eq!(n.label(0).unwrap(), b"a\x00b");
        let reparsed: Name = n.to_string().parse().unwrap();
        assert_eq!(n, reparsed);
    }

    #[test]
    fn canonical_ordering() {
        let a: Name = "a.example".parse().unwrap();
        let b: Name = "z.a.example".parse().unwrap();
        let c: Name = "b.example".parse().unwrap();
        // RFC 4034 §6.1 canonical order: a.example < z.a.example < b.example
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn common_suffix() {
        let a: Name = "mail.example.com".parse().unwrap();
        let b: Name = "www.example.com".parse().unwrap();
        assert_eq!(a.common_suffix_len(&b), 2);
    }

    #[test]
    fn label_accessors() {
        let n: Name = "www.example.com".parse().unwrap();
        let labels: Vec<&[u8]> = n.labels().collect();
        assert_eq!(labels, vec![&b"www"[..], &b"example"[..], &b"com"[..]]);
        assert_eq!(n.label(1).unwrap(), b"example");
        assert_eq!(n.label(3), None);
        assert_eq!(n.labels().len(), 3);
    }
}
