//! Borrowed, zero-copy message decoding.
//!
//! [`MessageView`] is the read side of the zero-alloc message lifecycle: it
//! wraps a raw datagram (typically a slice of the receive arena), validates
//! its structure in **one allocation-free sweep**, and then hands out lazy
//! iterators over questions and records. Nothing is materialized until the
//! caller *keeps* something: names compare label-by-label against owned
//! [`Name`]s without being built, and records promote to owned [`Record`]s
//! only via [`RecordView::to_record`].
//!
//! [`MsgRef`] unifies the borrowed view with the owned [`Message`] so lookup
//! machines run identically over both: the reactor's UDP hot path hands them
//! views over arena slices, while the TCP side-pool, the blocking driver,
//! and the discrete-event simulator hand them owned messages.

use std::net::Ipv4Addr;

use crate::buffer::WireReader;
use crate::edns::{Cookie, Edns, OPTION_COOKIE};
use crate::error::{WireError, WireResult};
use crate::header::{Flags, Header, Rcode};
use crate::message::Message;
use crate::name::{Name, NameBuilder};
use crate::question::Question;
use crate::rdata::RData;
use crate::record::Record;
use crate::rtype::{RecordClass, RecordType};

/// Walk one (possibly compressed) encoded name starting at `start`,
/// validating label lengths, total name length, and pointer discipline.
/// Returns the offset just past the name *at this position* (after the
/// first pointer, if any).
fn walk_name(buf: &[u8], start: usize) -> WireResult<usize> {
    let mut pos = start;
    let mut end: Option<usize> = None;
    let mut wire_len = 1usize;
    let mut hops = 0usize;
    loop {
        let len_byte = *buf.get(pos).ok_or(WireError::Truncated {
            context: "name label",
        })?;
        match len_byte & 0b1100_0000 {
            0b0000_0000 => {
                let len = len_byte as usize;
                if len == 0 {
                    return Ok(end.unwrap_or(pos + 1));
                }
                if len > crate::name::MAX_LABEL_LEN {
                    return Err(WireError::LabelTooLong(len));
                }
                if pos + 1 + len > buf.len() {
                    return Err(WireError::Truncated {
                        context: "name label body",
                    });
                }
                wire_len += len + 1;
                if wire_len > crate::name::MAX_NAME_LEN {
                    return Err(WireError::NameTooLong(wire_len));
                }
                pos += 1 + len;
            }
            0b1100_0000 => {
                let second = *buf.get(pos + 1).ok_or(WireError::Truncated {
                    context: "compression pointer",
                })?;
                let target = ((len_byte as usize & 0x3f) << 8) | second as usize;
                if target >= pos {
                    return Err(WireError::BadPointer { target });
                }
                if end.is_none() {
                    end = Some(pos + 2);
                }
                hops += 1;
                if hops > 126 {
                    return Err(WireError::BadPointer { target });
                }
                pos = target;
            }
            other => return Err(WireError::UnsupportedLabelType(other >> 6)),
        }
    }
}

/// A borrowed domain name inside a received message: a message buffer plus
/// the offset where the name starts. Labels are walked on demand (following
/// compression pointers) — comparing, hashing into, or iterating a `NameRef`
/// never allocates.
#[derive(Debug, Clone, Copy)]
pub struct NameRef<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> NameRef<'a> {
    /// The labels, most-specific first.
    pub fn labels(&self) -> NameRefLabels<'a> {
        NameRefLabels {
            buf: self.buf,
            pos: self.off,
            hops: 0,
            done: false,
        }
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels().next().is_none()
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Case-insensitive equality against an owned [`Name`], label by label,
    /// without materializing anything.
    pub fn eq_name(&self, name: &Name) -> bool {
        let mut ours = self.labels();
        let mut theirs = name.labels();
        loop {
            match (ours.next(), theirs.next()) {
                (None, None) => return true,
                (Some(a), Some(b)) => {
                    if !a.eq_ignore_ascii_case(b) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }

    /// Promote to an owned [`Name`] (inline storage: allocation-free for
    /// names up to [`crate::INLINE_NAME_LEN`] octets).
    pub fn to_name(&self) -> Name {
        let mut builder = NameBuilder::new();
        for label in self.labels() {
            if builder.push(label).is_err() {
                break; // cannot happen on a validated message
            }
        }
        builder.finish()
    }
}

/// Iterator over a [`NameRef`]'s labels. Malformed input (impossible on a
/// sweep-validated message) terminates the iteration instead of panicking.
#[derive(Debug, Clone)]
pub struct NameRefLabels<'a> {
    buf: &'a [u8],
    pos: usize,
    hops: usize,
    done: bool,
}

impl<'a> Iterator for NameRefLabels<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        loop {
            if self.done {
                return None;
            }
            let len_byte = match self.buf.get(self.pos) {
                Some(b) => *b,
                None => {
                    self.done = true;
                    return None;
                }
            };
            match len_byte & 0b1100_0000 {
                0b0000_0000 => {
                    let len = len_byte as usize;
                    if len == 0 {
                        self.done = true;
                        return None;
                    }
                    let start = self.pos + 1;
                    let end = start + len;
                    if end > self.buf.len() {
                        self.done = true;
                        return None;
                    }
                    self.pos = end;
                    return Some(&self.buf[start..end]);
                }
                0b1100_0000 => {
                    let second = match self.buf.get(self.pos + 1) {
                        Some(b) => *b,
                        None => {
                            self.done = true;
                            return None;
                        }
                    };
                    let target = ((len_byte as usize & 0x3f) << 8) | second as usize;
                    if target >= self.pos || self.hops > 126 {
                        self.done = true;
                        return None;
                    }
                    self.hops += 1;
                    self.pos = target;
                }
                _ => {
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

/// One question, borrowed from the message buffer.
#[derive(Debug, Clone, Copy)]
pub struct QuestionView<'a> {
    /// Name being queried.
    pub name: NameRef<'a>,
    /// Query type.
    pub qtype: RecordType,
    /// Query class.
    pub qclass: RecordClass,
}

impl QuestionView<'_> {
    /// Promote to an owned [`Question`].
    pub fn to_question(&self) -> Question {
        Question {
            name: self.name.to_name(),
            qtype: self.qtype,
            qclass: self.qclass,
        }
    }
}

/// One resource record, borrowed from the message buffer: fixed fields are
/// decoded, the owner name and RDATA stay in place until promoted.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    buf: &'a [u8],
    name_off: usize,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    rdata_off: usize,
    rdlen: usize,
}

impl<'a> RecordView<'a> {
    /// The owner name, still borrowed.
    pub fn name(&self) -> NameRef<'a> {
        NameRef {
            buf: self.buf,
            off: self.name_off,
        }
    }

    /// The raw RDATA octets (names inside may be compressed — use
    /// [`RecordView::to_record`] for typed access).
    pub fn rdata_bytes(&self) -> &'a [u8] {
        &self.buf[self.rdata_off..self.rdata_off + self.rdlen]
    }

    /// For an A record, the address — without promotion.
    pub fn a_addr(&self) -> Option<Ipv4Addr> {
        if self.rtype == RecordType::A && self.rdlen == 4 {
            let b = self.rdata_bytes();
            Some(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
        } else {
            None
        }
    }

    /// For NS/CNAME/PTR/DNAME records, the target name (promoted — inline,
    /// so allocation-free for typical names).
    pub fn target_name(&self) -> Option<Name> {
        match self.rtype {
            RecordType::NS | RecordType::CNAME | RecordType::PTR | RecordType::DNAME => {
                walk_name(self.buf, self.rdata_off).ok()?;
                Some(
                    NameRef {
                        buf: self.buf,
                        off: self.rdata_off,
                    }
                    .to_name(),
                )
            }
            _ => None,
        }
    }

    /// Promote to an owned, typed [`Record`].
    pub fn to_record(&self) -> WireResult<Record> {
        let mut r = WireReader::new(self.buf);
        r.seek(self.rdata_off)?;
        let rdata = RData::decode(self.rtype, self.rdlen, &mut r)?;
        Ok(Record {
            name: self.name().to_name(),
            rtype: self.rtype,
            class: self.class,
            ttl: self.ttl,
            rdata,
        })
    }
}

/// Iterator over one record section of a [`MessageView`].
#[derive(Debug, Clone)]
pub struct RecordViews<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u16,
    /// The additional-section iterator skips the OPT pseudo-record, for
    /// parity with [`Message::additionals`].
    skip_opt: bool,
}

impl<'a> Iterator for RecordViews<'a> {
    type Item = RecordView<'a>;

    fn next(&mut self) -> Option<RecordView<'a>> {
        while self.remaining > 0 {
            self.remaining -= 1;
            let name_off = self.pos;
            let after_name = walk_name(self.buf, name_off).ok()?;
            let fixed_end = after_name + 10;
            if fixed_end > self.buf.len() {
                return None;
            }
            let rtype = RecordType::from_u16(u16::from_be_bytes([
                self.buf[after_name],
                self.buf[after_name + 1],
            ]));
            let class = RecordClass::from_u16(u16::from_be_bytes([
                self.buf[after_name + 2],
                self.buf[after_name + 3],
            ]));
            let ttl = u32::from_be_bytes([
                self.buf[after_name + 4],
                self.buf[after_name + 5],
                self.buf[after_name + 6],
                self.buf[after_name + 7],
            ]);
            let rdlen =
                u16::from_be_bytes([self.buf[after_name + 8], self.buf[after_name + 9]]) as usize;
            if fixed_end + rdlen > self.buf.len() {
                return None;
            }
            self.pos = fixed_end + rdlen;
            if self.skip_opt && rtype == RecordType::OPT {
                continue;
            }
            return Some(RecordView {
                buf: self.buf,
                name_off,
                rtype,
                class,
                ttl,
                rdata_off: fixed_end,
                rdlen,
            });
        }
        None
    }
}

/// Iterator over the question section of a [`MessageView`].
#[derive(Debug, Clone)]
pub struct QuestionViews<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u16,
}

impl<'a> Iterator for QuestionViews<'a> {
    type Item = QuestionView<'a>;

    fn next(&mut self) -> Option<QuestionView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let name_off = self.pos;
        let after_name = walk_name(self.buf, name_off).ok()?;
        if after_name + 4 > self.buf.len() {
            return None;
        }
        let qtype = RecordType::from_u16(u16::from_be_bytes([
            self.buf[after_name],
            self.buf[after_name + 1],
        ]));
        let qclass = RecordClass::from_u16(u16::from_be_bytes([
            self.buf[after_name + 2],
            self.buf[after_name + 3],
        ]));
        self.pos = after_name + 4;
        Some(QuestionView {
            name: NameRef {
                buf: self.buf,
                off: name_off,
            },
            qtype,
            qclass,
        })
    }
}

/// The lifted OPT pseudo-record of a borrowed message.
#[derive(Debug, Clone, Copy)]
struct OptView {
    udp_payload_size: u16,
    ttl: u32,
    rdata_off: usize,
    rdlen: usize,
}

/// A borrowed, lazily-decoded DNS message over a raw datagram.
///
/// [`MessageView::parse`] runs one bounds-checking sweep — names walked,
/// record shapes validated, RDATA checked via [`RData::validate`], OPT
/// located — and allocates nothing for the record types real scans see;
/// section contents are decoded on iteration and promoted to owned values
/// only on demand. `parse` accepts exactly the messages
/// [`Message::decode`] accepts, with one deliberate exception: EDNS
/// options must fit their RDLENGTH exactly (the owned decoder leniently
/// reads an overrunning option past the OPT record's end; the view
/// rejects such datagrams instead of misparsing what follows). The
/// reactor relies on this equivalence so the view path and the
/// `owned_decode` fallback drop the same malformed datagrams — a
/// response that parses here always promotes.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    buf: &'a [u8],
    header: Header,
    /// Replaces the wire transaction id (the reactor restores the
    /// machine's own id without touching the buffer).
    id_override: Option<u16>,
    q_off: usize,
    an_off: usize,
    ns_off: usize,
    ar_off: usize,
    opt: Option<OptView>,
}

impl<'a> MessageView<'a> {
    /// Validate `bytes` as a DNS message and build the view. One pass, no
    /// allocations; decoding arbitrary bytes must never panic.
    pub fn parse(bytes: &'a [u8]) -> WireResult<MessageView<'a>> {
        let mut r = WireReader::new(bytes);
        let header = Header::decode(&mut r)?;
        // Same impossible-count precheck as the owned decoder.
        let min_needed = header.qdcount as usize * 5
            + (header.ancount as usize + header.nscount as usize + header.arcount as usize) * 11;
        if min_needed > r.remaining() {
            return Err(WireError::CountMismatch { section: "header" });
        }
        let q_off = r.position();
        let mut pos = q_off;
        for _ in 0..header.qdcount {
            pos = walk_name(bytes, pos)?;
            pos = pos
                .checked_add(4)
                .filter(|&p| p <= bytes.len())
                .ok_or(WireError::Truncated {
                    context: "question fixed fields",
                })?;
        }
        let an_off = pos;
        for _ in 0..header.ancount {
            pos = skip_record(bytes, pos, false)?.1;
        }
        let ns_off = pos;
        for _ in 0..header.nscount {
            pos = skip_record(bytes, pos, false)?.1;
        }
        let ar_off = pos;
        let mut opt = None;
        for _ in 0..header.arcount {
            let (meta, next) = skip_record(bytes, pos, true)?;
            if meta.rtype == RecordType::OPT {
                let owner = NameRef {
                    buf: bytes,
                    off: pos,
                };
                if !owner.is_root() {
                    return Err(WireError::InvalidValue {
                        field: "OPT owner name",
                    });
                }
                // Later OPT wins is a protocol violation; first one counts.
                if opt.is_none() {
                    opt = Some(OptView {
                        udp_payload_size: meta.class_bits,
                        ttl: meta.ttl,
                        rdata_off: meta.rdata_off,
                        rdlen: meta.rdlen,
                    });
                }
            }
            pos = next;
        }
        Ok(MessageView {
            buf: bytes,
            header,
            id_override: None,
            q_off,
            an_off,
            ns_off,
            ar_off,
            opt,
        })
    }

    /// The same view reporting `id` as its transaction id (the underlying
    /// bytes are untouched).
    pub fn with_id(mut self, id: u16) -> MessageView<'a> {
        self.id_override = Some(id);
        self
    }

    /// The raw datagram this view borrows.
    pub fn bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Transaction id (override applied).
    pub fn id(&self) -> u16 {
        self.id_override.unwrap_or(self.header.id)
    }

    /// Header flag bits.
    pub fn flags(&self) -> Flags {
        self.header.flags
    }

    /// Full response code, extended RCODE bits included when EDNS is
    /// present.
    pub fn rcode(&self) -> Rcode {
        let low = self.header.rcode_low as u16;
        let val = match &self.opt {
            Some(opt) => ((opt.ttl >> 24) as u16) << 4 | low,
            None => low,
        };
        Rcode::from_u16(val)
    }

    /// True if an OPT record was present.
    pub fn has_edns(&self) -> bool {
        self.opt.is_some()
    }

    /// The peer's advertised UDP payload size, if EDNS was present.
    pub fn udp_payload_size(&self) -> Option<u16> {
        self.opt.as_ref().map(|o| o.udp_payload_size)
    }

    /// The DNS cookie riding in the OPT record, if any (RFC 7873).
    pub fn cookie(&self) -> Option<Cookie> {
        let opt = self.opt.as_ref()?;
        let mut pos = opt.rdata_off;
        let end = opt.rdata_off + opt.rdlen;
        while pos + 4 <= end {
            let code = u16::from_be_bytes([self.buf[pos], self.buf[pos + 1]]);
            let len = u16::from_be_bytes([self.buf[pos + 2], self.buf[pos + 3]]) as usize;
            if pos + 4 + len > end {
                return None;
            }
            if code == OPTION_COOKIE {
                return Cookie::from_wire(&self.buf[pos + 4..pos + 4 + len]);
            }
            pos += 4 + len;
        }
        None
    }

    /// Entries in the question section.
    pub fn question_count(&self) -> usize {
        self.header.qdcount as usize
    }

    /// Entries in the answer section.
    pub fn answer_count(&self) -> usize {
        self.header.ancount as usize
    }

    /// Iterate the question section.
    pub fn questions(&self) -> QuestionViews<'a> {
        QuestionViews {
            buf: self.buf,
            pos: self.q_off,
            remaining: self.header.qdcount,
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<QuestionView<'a>> {
        self.questions().next()
    }

    /// Iterate the answer section.
    pub fn answers(&self) -> RecordViews<'a> {
        RecordViews {
            buf: self.buf,
            pos: self.an_off,
            remaining: self.header.ancount,
            skip_opt: false,
        }
    }

    /// Iterate the authority section.
    pub fn authorities(&self) -> RecordViews<'a> {
        RecordViews {
            buf: self.buf,
            pos: self.ns_off,
            remaining: self.header.nscount,
            skip_opt: false,
        }
    }

    /// Iterate the additional section (the OPT pseudo-record is skipped,
    /// matching [`Message::additionals`]).
    pub fn additionals(&self) -> RecordViews<'a> {
        RecordViews {
            buf: self.buf,
            pos: self.ar_off,
            remaining: self.header.arcount,
            skip_opt: true,
        }
    }

    /// Promote the whole message to an owned [`Message`] (id override
    /// applied). Equivalent to [`Message::decode`] on the raw bytes.
    pub fn to_message(&self) -> WireResult<Message> {
        let mut m = Message::decode(self.buf)?;
        m.id = self.id();
        Ok(m)
    }
}

/// Fixed record fields collected while skipping one record.
struct RecordMeta {
    rtype: RecordType,
    class_bits: u16,
    ttl: u32,
    rdata_off: usize,
    rdlen: usize,
}

/// Skip one record at `pos`, validating its shape *and* its RDATA (so a
/// record that survives the sweep always promotes). `edns_opt` marks the
/// additional section, where an OPT pseudo-record's RDATA is an EDNS
/// option list rather than typed RDATA.
fn skip_record(buf: &[u8], pos: usize, edns_opt: bool) -> WireResult<(RecordMeta, usize)> {
    let after_name = walk_name(buf, pos)?;
    if after_name + 10 > buf.len() {
        return Err(WireError::Truncated {
            context: "record fixed fields",
        });
    }
    let rtype = RecordType::from_u16(u16::from_be_bytes([buf[after_name], buf[after_name + 1]]));
    let class_bits = u16::from_be_bytes([buf[after_name + 2], buf[after_name + 3]]);
    let ttl = u32::from_be_bytes([
        buf[after_name + 4],
        buf[after_name + 5],
        buf[after_name + 6],
        buf[after_name + 7],
    ]);
    let rdlen = u16::from_be_bytes([buf[after_name + 8], buf[after_name + 9]]) as usize;
    let rdata_off = after_name + 10;
    if rdata_off + rdlen > buf.len() {
        return Err(WireError::Truncated {
            context: "record rdata",
        });
    }
    if edns_opt && rtype == RecordType::OPT {
        validate_opt_options(buf, rdata_off, rdlen)?;
    } else {
        let mut r = WireReader::new(buf);
        r.seek(rdata_off)?;
        RData::validate(rtype, rdlen, &mut r)?;
    }
    Ok((
        RecordMeta {
            rtype,
            class_bits,
            ttl,
            rdata_off,
            rdlen,
        },
        rdata_off + rdlen,
    ))
}

/// Validate an OPT record's option list: every `(code, length, data)`
/// triple must fit entirely within the RDATA. Slightly stricter than
/// [`crate::Edns::decode_body`], which reads an overrunning option past
/// the record boundary — the view refuses to misparse what follows.
fn validate_opt_options(buf: &[u8], rdata_off: usize, rdlen: usize) -> WireResult<()> {
    debug_assert!(rdata_off + rdlen <= buf.len());
    let end = rdata_off + rdlen;
    let mut pos = rdata_off;
    while pos < end {
        if pos + 4 > end {
            return Err(WireError::Truncated {
                context: "OPT option header",
            });
        }
        let len = u16::from_be_bytes([buf[pos + 2], buf[pos + 3]]) as usize;
        if pos + 4 + len > end {
            return Err(WireError::Truncated {
                context: "OPT option data",
            });
        }
        pos += 4 + len;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// MsgRef: one message type for machines, borrowed or owned
// ---------------------------------------------------------------------------

/// A response message as delivered to a lookup machine: either an owned
/// [`Message`] (simulator, TCP side-pool, blocking driver) or a borrowed
/// [`MessageView`] over the receive arena (the reactor's UDP hot path).
///
/// Machines inspect it through the accessors below and *promote* — clone
/// records out — only what they actually keep.
#[derive(Debug)]
pub enum MsgRef<'a> {
    /// An owned, fully-decoded message.
    Owned(Message),
    /// A borrowed view over the raw datagram.
    View(MessageView<'a>),
}

impl From<Message> for MsgRef<'_> {
    fn from(m: Message) -> Self {
        MsgRef::Owned(m)
    }
}

impl<'a> From<MessageView<'a>> for MsgRef<'a> {
    fn from(v: MessageView<'a>) -> Self {
        MsgRef::View(v)
    }
}

impl<'a> MsgRef<'a> {
    /// Transaction id.
    pub fn id(&self) -> u16 {
        match self {
            MsgRef::Owned(m) => m.id,
            MsgRef::View(v) => v.id(),
        }
    }

    /// Header flag bits.
    pub fn flags(&self) -> Flags {
        match self {
            MsgRef::Owned(m) => m.flags,
            MsgRef::View(v) => v.flags(),
        }
    }

    /// Full response code (extended bits included).
    pub fn rcode(&self) -> Rcode {
        match self {
            MsgRef::Owned(m) => m.rcode(),
            MsgRef::View(v) => v.rcode(),
        }
    }

    /// The DNS cookie riding in the response's OPT record, if any.
    pub fn cookie(&self) -> Option<Cookie> {
        match self {
            MsgRef::Owned(m) => m.edns.as_ref().and_then(Edns::cookie),
            MsgRef::View(v) => v.cookie(),
        }
    }

    /// Records in the answer section.
    pub fn answer_count(&self) -> usize {
        match self {
            MsgRef::Owned(m) => m.answers.len(),
            MsgRef::View(v) => v.answer_count(),
        }
    }

    /// Iterate the answer section without promoting.
    pub fn answers(&self) -> RecordCursor<'_> {
        match self {
            MsgRef::Owned(m) => RecordCursor::Owned(m.answers.iter()),
            MsgRef::View(v) => RecordCursor::View(v.answers()),
        }
    }

    /// Iterate the authority section without promoting.
    pub fn authorities(&self) -> RecordCursor<'_> {
        match self {
            MsgRef::Owned(m) => RecordCursor::Owned(m.authorities.iter()),
            MsgRef::View(v) => RecordCursor::View(v.authorities()),
        }
    }

    /// Iterate the additional section without promoting.
    pub fn additionals(&self) -> RecordCursor<'_> {
        match self {
            MsgRef::Owned(m) => RecordCursor::Owned(m.additionals.iter()),
            MsgRef::View(v) => RecordCursor::View(v.additionals()),
        }
    }

    /// Promote the answer section to owned records. Records that fail to
    /// decode on the view path are skipped (the owned path rejected the
    /// whole datagram at decode time instead).
    pub fn answers_vec(&self) -> Vec<Record> {
        collect_records(self.answers())
    }

    /// Promote the authority section to owned records.
    pub fn authorities_vec(&self) -> Vec<Record> {
        collect_records(self.authorities())
    }

    /// Promote the additional section to owned records.
    pub fn additionals_vec(&self) -> Vec<Record> {
        collect_records(self.additionals())
    }

    /// Promote the whole message (used by `--trace` output).
    pub fn to_message(&self) -> WireResult<Message> {
        match self {
            MsgRef::Owned(m) => Ok(m.clone()),
            MsgRef::View(v) => v.to_message(),
        }
    }
}

fn collect_records(cursor: RecordCursor<'_>) -> Vec<Record> {
    cursor.filter_map(|r| r.to_record()).collect()
}

/// Iterator over one section of a [`MsgRef`], yielding [`RecordEntry`]s.
pub enum RecordCursor<'m> {
    /// Borrowing an owned message's section.
    Owned(std::slice::Iter<'m, Record>),
    /// Walking a borrowed view's section.
    View(RecordViews<'m>),
}

impl<'m> Iterator for RecordCursor<'m> {
    type Item = RecordEntry<'m>;

    fn next(&mut self) -> Option<RecordEntry<'m>> {
        match self {
            RecordCursor::Owned(it) => it.next().map(RecordEntry::Owned),
            RecordCursor::View(it) => it.next().map(RecordEntry::View),
        }
    }
}

/// One record of a [`MsgRef`] section — inspectable without promotion.
pub enum RecordEntry<'m> {
    /// A record of an owned message.
    Owned(&'m Record),
    /// A borrowed record view.
    View(RecordView<'m>),
}

impl RecordEntry<'_> {
    /// Record type.
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordEntry::Owned(r) => r.rtype,
            RecordEntry::View(v) => v.rtype,
        }
    }

    /// Time to live.
    pub fn ttl(&self) -> u32 {
        match self {
            RecordEntry::Owned(r) => r.ttl,
            RecordEntry::View(v) => v.ttl,
        }
    }

    /// Case-insensitive owner-name comparison without materializing.
    pub fn name_eq(&self, name: &Name) -> bool {
        match self {
            RecordEntry::Owned(r) => r.name == *name,
            RecordEntry::View(v) => v.name().eq_name(name),
        }
    }

    /// The owner name, promoted (inline storage — usually allocation-free).
    pub fn owner(&self) -> Name {
        match self {
            RecordEntry::Owned(r) => r.name.clone(),
            RecordEntry::View(v) => v.name().to_name(),
        }
    }

    /// For A records, the address.
    pub fn a_addr(&self) -> Option<Ipv4Addr> {
        match self {
            RecordEntry::Owned(r) => match &r.rdata {
                RData::A(a) => Some(*a),
                _ => None,
            },
            RecordEntry::View(v) => v.a_addr(),
        }
    }

    /// For CNAME records, the target.
    pub fn cname_target(&self) -> Option<Name> {
        match self {
            RecordEntry::Owned(r) => match &r.rdata {
                RData::Cname(t) => Some(t.clone()),
                _ => None,
            },
            RecordEntry::View(v) if v.rtype == RecordType::CNAME => v.target_name(),
            RecordEntry::View(_) => None,
        }
    }

    /// For NS records, the nameserver host.
    pub fn ns_target(&self) -> Option<Name> {
        match self {
            RecordEntry::Owned(r) => match &r.rdata {
                RData::Ns(t) => Some(t.clone()),
                _ => None,
            },
            RecordEntry::View(v) if v.rtype == RecordType::NS => v.target_name(),
            RecordEntry::View(_) => None,
        }
    }

    /// Promote to an owned record. `None` if the record's RDATA fails to
    /// decode (view path only; see [`MsgRef::answers_vec`]).
    pub fn to_record(&self) -> Option<Record> {
        match self {
            RecordEntry::Owned(r) => Some((*r).clone()),
            RecordEntry::View(v) => v.to_record().ok(),
        }
    }
}

/// Minimum TTL across the answer section of an already-encoded message,
/// without promoting any record. `None` when the buffer fails to parse or
/// carries no answers. The serve-path packet cache derives an entry's
/// expiry deadline from the encoded response with this.
pub fn min_answer_ttl(msg: &[u8]) -> Option<u32> {
    let view = MessageView::parse(msg).ok()?;
    view.answers().map(|r| r.ttl).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use crate::rtype::RecordType;

    fn referral() -> Message {
        let mut m = Message::query(
            0x1234,
            Question::new("www.Example.COM".parse().unwrap(), RecordType::A),
        );
        m.flags.response = true;
        for i in 0..4u8 {
            let ns: Name = format!("ns{i}.gtld.test").parse().unwrap();
            m.authorities.push(Record::new(
                "com".parse().unwrap(),
                172800,
                RData::Ns(ns.clone()),
            ));
            m.additionals.push(Record::new(
                ns,
                172800,
                RData::A(Ipv4Addr::new(192, 5, 6, 30 + i)),
            ));
        }
        m
    }

    #[test]
    fn view_matches_owned_decode() {
        let m = referral();
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.id(), m.id);
        assert_eq!(view.flags(), m.flags);
        assert_eq!(view.rcode(), m.rcode());
        assert_eq!(view.answer_count(), m.answers.len());
        let q = view.question().unwrap();
        assert!(q.name.eq_name(&m.questions[0].name));
        assert_eq!(q.to_question(), m.questions[0]);
        let auth: Vec<Record> = view.authorities().map(|r| r.to_record().unwrap()).collect();
        assert_eq!(auth, m.authorities);
        let add: Vec<Record> = view.additionals().map(|r| r.to_record().unwrap()).collect();
        assert_eq!(add, m.additionals);
        assert_eq!(view.to_message().unwrap(), m);
    }

    #[test]
    fn view_skips_opt_in_additionals_and_reads_extended_rcode() {
        let mut m = referral();
        m.rcode = crate::message::RcodeField(Rcode::BadVers);
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.rcode(), Rcode::BadVers);
        assert!(view.has_edns());
        assert_eq!(view.additionals().count(), m.additionals.len());
    }

    #[test]
    fn view_id_override_applies_to_promotion() {
        let m = referral();
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap().with_id(0xBEEF);
        assert_eq!(view.id(), 0xBEEF);
        assert_eq!(view.to_message().unwrap().id, 0xBEEF);
    }

    #[test]
    fn view_cookie_roundtrip() {
        let mut m = referral();
        let mut cookie_bytes = [0u8; 16];
        for (i, b) in cookie_bytes.iter_mut().enumerate() {
            *b = 0x40 + i as u8;
        }
        let cookie = Cookie::from_wire(&cookie_bytes).unwrap();
        m.edns.as_mut().unwrap().set_cookie(cookie);
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.cookie(), Some(cookie));
        let msg_ref = MsgRef::View(view);
        assert_eq!(msg_ref.cookie(), Some(cookie));
    }

    #[test]
    fn record_entry_accessors_agree_between_paths() {
        let m = referral();
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        let owned_ref = MsgRef::Owned(m.clone());
        let view_ref = MsgRef::View(view);
        let com: Name = "com".parse().unwrap();
        for msg in [&owned_ref, &view_ref] {
            let mut ns_targets = Vec::new();
            for rec in msg.authorities() {
                assert_eq!(rec.rtype(), RecordType::NS);
                assert!(rec.name_eq(&com));
                assert_eq!(rec.owner(), com);
                ns_targets.push(rec.ns_target().unwrap());
            }
            assert_eq!(ns_targets.len(), 4);
            let addrs: Vec<Ipv4Addr> = msg.additionals().filter_map(|r| r.a_addr()).collect();
            assert_eq!(addrs.len(), 4);
        }
        assert_eq!(owned_ref.authorities_vec(), view_ref.authorities_vec());
        assert_eq!(owned_ref.additionals_vec(), view_ref.additionals_vec());
    }

    #[test]
    fn parse_arbitrary_prefix_never_panics() {
        let m = referral();
        let bytes = m.encode().unwrap();
        for cut in 0..bytes.len() {
            let view = MessageView::parse(&bytes[..cut]);
            let owned = Message::decode(&bytes[..cut]);
            // Structural acceptance matches the owned decoder exactly.
            assert_eq!(view.is_ok(), owned.is_ok(), "cut {cut}");
        }
    }

    #[test]
    fn view_rejects_nonroot_opt_like_owned_decode() {
        use crate::buffer::WireWriter;
        let mut w = WireWriter::new();
        Header {
            id: 1,
            arcount: 1,
            ..Header::default()
        }
        .encode(&mut w)
        .unwrap();
        w.write_name(&"x.example".parse().unwrap()).unwrap();
        w.write_u16(RecordType::OPT.to_u16()).unwrap();
        w.write_u16(1232).unwrap();
        w.write_u32(0).unwrap();
        w.write_u16(0).unwrap();
        let bytes = w.finish();
        assert!(MessageView::parse(&bytes).is_err());
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn malformed_rdata_rejected_like_owned_decode() {
        // A CNAME answer whose RDATA is a forward compression pointer:
        // structurally sized correctly (RDLENGTH=2) but undecodable. The
        // owned decoder rejects the datagram; the view sweep must too —
        // otherwise the reactor's view path would complete lookups on
        // responses the owned path retries.
        use crate::buffer::WireWriter;
        let mut w = WireWriter::new();
        Header {
            id: 7,
            flags: Flags {
                response: true,
                ..Flags::default()
            },
            ancount: 1,
            ..Header::default()
        }
        .encode(&mut w)
        .unwrap();
        let owner: Name = "alias.example".parse().unwrap();
        w.write_name(&owner).unwrap();
        w.write_u16(RecordType::CNAME.to_u16()).unwrap();
        w.write_u16(1).unwrap(); // class IN
        w.write_u32(300).unwrap();
        w.write_u16(2).unwrap(); // RDLENGTH
        w.write_u8(0xC0).unwrap(); // pointer to offset 0x3FFF: forward/garbage
        w.write_u8(0xFF).unwrap();
        let bytes = w.finish();
        assert!(Message::decode(&bytes).is_err());
        assert!(MessageView::parse(&bytes).is_err());

        // Same shape with a bad A record length: RDLENGTH=2 for an A.
        let mut w = WireWriter::new();
        Header {
            id: 8,
            ancount: 1,
            ..Header::default()
        }
        .encode(&mut w)
        .unwrap();
        w.write_name(&owner).unwrap();
        w.write_u16(RecordType::A.to_u16()).unwrap();
        w.write_u16(1).unwrap();
        w.write_u32(300).unwrap();
        w.write_u16(2).unwrap();
        w.write_u16(0xDEAD).unwrap();
        let bytes = w.finish();
        assert!(Message::decode(&bytes).is_err());
        assert!(MessageView::parse(&bytes).is_err());
    }

    #[test]
    fn cname_target_follows_compression() {
        let mut m = Message::query(
            9,
            Question::new("alias.example.com".parse().unwrap(), RecordType::A),
        );
        m.flags.response = true;
        m.answers.push(Record::new(
            "alias.example.com".parse().unwrap(),
            300,
            RData::Cname("real.example.com".parse().unwrap()),
        ));
        let bytes = m.encode().unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        let entry = view.answers().next().unwrap();
        assert_eq!(
            entry.target_name().unwrap(),
            "real.example.com".parse::<Name>().unwrap()
        );
    }
}
