//! Low-level wire reader/writer.
//!
//! `WireReader` walks a received datagram. [`ScratchBuf`] builds one (or
//! several, back to back): it is the reusable, allocation-free-in-steady-state
//! encode buffer the whole message lifecycle writes through, and it owns the
//! name-compression table (RFC 1035 §4.1.4) because compression offsets are a
//! property of the message being assembled, not of any one name. `WireWriter`
//! is a thin convenience wrapper for one-shot encodes that returns an owned
//! `Vec<u8>`.

use crate::error::{WireError, WireResult};
use crate::name::{Name, NameBuilder};

/// Maximum size of a DNS message we will encode (TCP limit; UDP is smaller).
pub const MAX_MESSAGE_SIZE: usize = u16::MAX as usize;

/// Cursor over a received message.
///
/// All reads are bounds-checked; decoding arbitrary bytes must never panic.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a datagram for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current read offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Total message length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reposition the cursor (used when following compression pointers).
    pub fn seek(&mut self, pos: usize) -> WireResult<()> {
        if pos > self.buf.len() {
            return Err(WireError::BadPointer { target: pos });
        }
        self.pos = pos;
        Ok(())
    }

    /// Read a single octet.
    pub fn read_u8(&mut self, context: &'static str) -> WireResult<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn read_u16(&mut self, context: &'static str) -> WireResult<u16> {
        let bytes = self.read_bytes(2, context)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Read a big-endian u32.
    pub fn read_u32(&mut self, context: &'static str) -> WireResult<u32> {
        let bytes = self.read_bytes(4, context)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Read a big-endian u48 (used by TSIG timestamps).
    pub fn read_u48(&mut self, context: &'static str) -> WireResult<u64> {
        let b = self.read_bytes(6, context)?;
        Ok(u64::from(b[0]) << 40
            | u64::from(b[1]) << 32
            | u64::from(b[2]) << 24
            | u64::from(b[3]) << 16
            | u64::from(b[4]) << 8
            | u64::from(b[5]))
    }

    /// Read a big-endian u64.
    pub fn read_u64(&mut self, context: &'static str) -> WireResult<u64> {
        let b = self.read_bytes(8, context)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an exact number of raw octets.
    pub fn read_bytes(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated { context });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a `<character-string>`: one length octet then that many octets.
    pub fn read_char_string(&mut self, context: &'static str) -> WireResult<Vec<u8>> {
        let len = self.read_u8(context)? as usize;
        Ok(self.read_bytes(len, context)?.to_vec())
    }

    /// Read a (possibly compressed) domain name starting at the cursor.
    ///
    /// The cursor ends just past the name as it appears *at this position*
    /// (i.e. after the pointer, if one was used). Pointer chains are limited
    /// and must strictly move backwards, which makes loops impossible.
    /// Labels are assembled on the stack — one short name costs zero heap
    /// allocations.
    pub fn read_name(&mut self) -> WireResult<Name> {
        let mut builder = NameBuilder::new();
        let mut pos = self.pos;
        // Position to restore after the name read at the original location.
        let mut resume: Option<usize> = None;
        // A name can contain at most 127 labels; allow some pointer hops too.
        let mut hops = 0usize;
        loop {
            let len_byte = *self.buf.get(pos).ok_or(WireError::Truncated {
                context: "name label",
            })?;
            match len_byte & 0b1100_0000 {
                0b0000_0000 => {
                    let len = len_byte as usize;
                    if len == 0 {
                        pos += 1;
                        if resume.is_none() {
                            self.pos = pos;
                        }
                        break;
                    }
                    if len > crate::name::MAX_LABEL_LEN {
                        return Err(WireError::LabelTooLong(len));
                    }
                    let start = pos + 1;
                    let end = start + len;
                    if end > self.buf.len() {
                        return Err(WireError::Truncated {
                            context: "name label body",
                        });
                    }
                    if builder.wire_len() + len + 1 > crate::name::MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(builder.wire_len() + len + 1));
                    }
                    builder.push(&self.buf[start..end])?;
                    pos = end;
                }
                0b1100_0000 => {
                    let second = *self.buf.get(pos + 1).ok_or(WireError::Truncated {
                        context: "compression pointer",
                    })?;
                    let target = ((len_byte as usize & 0x3f) << 8) | second as usize;
                    // Pointers must reference earlier data; equal-or-later
                    // targets would allow loops.
                    if target >= pos {
                        return Err(WireError::BadPointer { target });
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    hops += 1;
                    if hops > 126 {
                        return Err(WireError::BadPointer { target });
                    }
                    pos = target;
                }
                other => return Err(WireError::UnsupportedLabelType(other >> 6)),
            }
        }
        if let Some(r) = resume {
            self.pos = r;
        }
        Ok(builder.finish())
    }
}

/// One entry of the reusable compression table: the FNV hash of the
/// lowercased label-suffix, and the suffix's offset relative to the start
/// of the message being assembled.
#[derive(Debug, Clone, Copy)]
struct CompressEntry {
    hash: u32,
    offset: u16,
}

/// A reusable, growable encode buffer with a name-compression table.
///
/// In the steady state — after it has grown to the size of the largest
/// message it has carried — encoding through a `ScratchBuf` performs **zero
/// heap allocations**: the byte buffer and the compression table both retain
/// their capacity across [`ScratchBuf::reset`] / [`ScratchBuf::begin_message`].
///
/// Several messages can be encoded back to back into one buffer (the
/// reactor's per-flush send arena does exactly this): [`ScratchBuf::begin_message`]
/// marks a new message start, and compression offsets are always relative to
/// that start, so pointers stay valid when the message is sent on its own.
#[derive(Debug, Default)]
pub struct ScratchBuf {
    buf: Vec<u8>,
    /// Start of the message currently being assembled.
    base: usize,
    /// Compression entries for the current message only.
    compress: Vec<CompressEntry>,
}

impl ScratchBuf {
    /// New empty scratch buffer.
    pub fn new() -> ScratchBuf {
        ScratchBuf {
            buf: Vec::with_capacity(512),
            base: 0,
            compress: Vec::new(),
        }
    }

    /// Drop all content (capacity is retained) and start over at offset 0.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.compress.clear();
        self.base = 0;
    }

    /// Mark the start of a new message at the current write position and
    /// return its offset. Compression state from the previous message is
    /// discarded — pointers never cross message boundaries.
    pub fn begin_message(&mut self) -> usize {
        self.base = self.buf.len();
        self.compress.clear();
        self.base
    }

    /// Offset where the current message starts.
    pub fn message_start(&self) -> usize {
        self.base
    }

    /// The bytes of the message currently being assembled.
    pub fn message_bytes(&self) -> &[u8] {
        &self.buf[self.base..]
    }

    /// Roll the current message back entirely (after a failed encode).
    pub fn abort_message(&mut self) {
        self.buf.truncate(self.base);
        self.compress.clear();
    }

    /// Total bytes written (across all messages in the buffer).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View of all bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the buffer's contents, leaving it empty (capacity is *not*
    /// retained — this is the one-shot [`WireWriter::finish`] path).
    pub fn take_bytes(&mut self) -> Vec<u8> {
        self.base = 0;
        self.compress.clear();
        std::mem::take(&mut self.buf)
    }

    fn ensure_capacity(&mut self, extra: usize) -> WireResult<()> {
        let total = self.buf.len() - self.base + extra;
        if total > MAX_MESSAGE_SIZE {
            return Err(WireError::MessageTooLong(total));
        }
        Ok(())
    }

    /// Append a single octet.
    pub fn write_u8(&mut self, v: u8) -> WireResult<()> {
        self.ensure_capacity(1)?;
        self.buf.push(v);
        Ok(())
    }

    /// Append a big-endian u16.
    pub fn write_u16(&mut self, v: u16) -> WireResult<()> {
        self.ensure_capacity(2)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Append a big-endian u32.
    pub fn write_u32(&mut self, v: u32) -> WireResult<()> {
        self.ensure_capacity(4)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Append a big-endian u48.
    pub fn write_u48(&mut self, v: u64) -> WireResult<()> {
        self.ensure_capacity(6)?;
        self.buf.extend_from_slice(&v.to_be_bytes()[2..8]);
        Ok(())
    }

    /// Append a big-endian u64.
    pub fn write_u64(&mut self, v: u64) -> WireResult<()> {
        self.ensure_capacity(8)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Append raw octets.
    pub fn write_bytes(&mut self, v: &[u8]) -> WireResult<()> {
        self.ensure_capacity(v.len())?;
        self.buf.extend_from_slice(v);
        Ok(())
    }

    /// Append a `<character-string>` (length octet + data, max 255).
    pub fn write_char_string(&mut self, v: &[u8]) -> WireResult<()> {
        if v.len() > 255 {
            return Err(WireError::CharStringTooLong(v.len()));
        }
        self.write_u8(v.len() as u8)?;
        self.write_bytes(v)
    }

    /// Overwrite two bytes at absolute position `pos` with a big-endian u16
    /// (used to patch RDLENGTH after the RDATA is known).
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        debug_assert!(pos + 2 <= self.buf.len());
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Write a name, compressing against previously written names of the
    /// current message.
    pub fn write_name(&mut self, name: &Name) -> WireResult<()> {
        self.write_name_inner(name, true)
    }

    /// Write a name without compression (required inside RDATA of types
    /// unknown to compressing resolvers, per RFC 3597).
    pub fn write_name_uncompressed(&mut self, name: &Name) -> WireResult<()> {
        self.write_name_inner(name, false)
    }

    fn write_name_inner(&mut self, name: &Name, compress: bool) -> WireResult<()> {
        let storage = name.storage_bytes();
        let mut pos = 0usize;
        while pos < storage.len() {
            let suffix = &storage[pos..];
            let hash = fnv_lower(suffix);
            if compress {
                if let Some(off) = self.find_suffix(hash, suffix) {
                    return self.write_u16(0xC000 | off);
                }
            }
            let here = self.buf.len() - self.base;
            // Offsets beyond 0x3FFF cannot be pointer targets.
            if compress && here <= 0x3FFF {
                self.compress.push(CompressEntry {
                    hash,
                    offset: here as u16,
                });
            }
            let label_end = pos + 1 + storage[pos] as usize;
            self.write_bytes(&storage[pos..label_end])?;
            pos = label_end;
        }
        self.write_u8(0)
    }

    /// Look for an already-written name suffix equal (case-insensitively)
    /// to `suffix` (length-prefixed label storage). The hash prefilter makes
    /// the scan cheap; a hit is confirmed by walking the encoded labels.
    fn find_suffix(&self, hash: u32, suffix: &[u8]) -> Option<u16> {
        for entry in &self.compress {
            if entry.hash == hash && self.encoded_matches(entry.offset as usize, suffix) {
                return Some(entry.offset);
            }
        }
        None
    }

    /// Compare the encoded (possibly pointer-continued) name at
    /// message-relative `off` against `suffix` storage.
    fn encoded_matches(&self, off: usize, suffix: &[u8]) -> bool {
        let msg = &self.buf[self.base..];
        let mut pos = off;
        let mut s = 0usize;
        let mut hops = 0usize;
        loop {
            let Some(&len_byte) = msg.get(pos) else {
                return false;
            };
            match len_byte & 0b1100_0000 {
                0b0000_0000 => {
                    let len = len_byte as usize;
                    if len == 0 {
                        return s == suffix.len();
                    }
                    if s >= suffix.len() || suffix[s] as usize != len {
                        return false;
                    }
                    let Some(enc) = msg.get(pos + 1..pos + 1 + len) else {
                        return false;
                    };
                    let want = &suffix[s + 1..s + 1 + len];
                    if !enc.eq_ignore_ascii_case(want) {
                        return false;
                    }
                    pos += 1 + len;
                    s += 1 + len;
                }
                0b1100_0000 => {
                    let Some(&second) = msg.get(pos + 1) else {
                        return false;
                    };
                    let target = ((len_byte as usize & 0x3f) << 8) | second as usize;
                    if target >= pos {
                        return false;
                    }
                    hops += 1;
                    if hops > 126 {
                        return false;
                    }
                    pos = target;
                }
                _ => return false,
            }
        }
    }
}

/// FNV-1a over ASCII-lowercased bytes — the compression table's prefilter.
fn fnv_lower(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b.to_ascii_lowercase() as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Growable output buffer for one-shot encodes: a [`ScratchBuf`] that hands
/// its bytes back as an owned `Vec<u8>`. Prefer borrowing a long-lived
/// `ScratchBuf` on hot paths.
#[derive(Debug, Default)]
pub struct WireWriter {
    inner: ScratchBuf,
}

impl WireWriter {
    /// New writer with compression enabled.
    pub fn new() -> Self {
        WireWriter {
            inner: ScratchBuf::new(),
        }
    }

    /// Consume the writer, returning the encoded message.
    pub fn finish(mut self) -> Vec<u8> {
        self.inner.take_bytes()
    }
}

impl std::ops::Deref for WireWriter {
    type Target = ScratchBuf;

    fn deref(&self) -> &ScratchBuf {
        &self.inner
    }
}

impl std::ops::DerefMut for WireWriter {
    fn deref_mut(&mut self) -> &mut ScratchBuf {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_bounds_checked() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.read_u16("t").unwrap(), 0x0102);
        assert!(matches!(r.read_u8("t"), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn u48_roundtrip() {
        let mut w = WireWriter::new();
        w.write_u48(0x0000_1234_5678_9ABC).unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u48("t").unwrap(), 0x0000_1234_5678_9ABC);
    }

    #[test]
    fn char_string_roundtrip() {
        let mut w = WireWriter::new();
        w.write_char_string(b"v=spf1 -all").unwrap();
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_char_string("t").unwrap(), b"v=spf1 -all");
    }

    #[test]
    fn char_string_too_long_rejected() {
        let mut w = WireWriter::new();
        let big = vec![b'a'; 256];
        assert!(matches!(
            w.write_char_string(&big),
            Err(WireError::CharStringTooLong(256))
        ));
    }

    #[test]
    fn name_compression_produces_pointer() {
        let mut w = WireWriter::new();
        let a: Name = "mail.example.com".parse().unwrap();
        let b: Name = "example.com".parse().unwrap();
        w.write_name(&a).unwrap();
        let before = w.len();
        w.write_name(&b).unwrap();
        // Second name is a bare 2-byte pointer to the suffix of the first.
        assert_eq!(w.len() - before, 2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
    }

    #[test]
    fn name_compression_is_case_insensitive() {
        let mut w = WireWriter::new();
        let a: Name = "mail.EXAMPLE.com".parse().unwrap();
        let b: Name = "example.COM".parse().unwrap();
        w.write_name(&a).unwrap();
        let before = w.len();
        w.write_name(&b).unwrap();
        assert_eq!(w.len() - before, 2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
    }

    #[test]
    fn compression_never_crosses_message_boundaries() {
        let mut s = ScratchBuf::new();
        let a: Name = "mail.example.com".parse().unwrap();
        s.begin_message();
        s.write_name(&a).unwrap();
        let first_len = s.len();
        let second = s.begin_message();
        s.write_name(&a).unwrap();
        // The second message must re-emit the full name, not point into
        // the first message.
        assert_eq!(s.len() - second, first_len);
        let mut r = WireReader::new(&s.as_slice()[second..]);
        assert_eq!(r.read_name().unwrap(), a);
    }

    #[test]
    fn scratch_reuse_keeps_capacity_and_resets_content() {
        let mut s = ScratchBuf::new();
        let a: Name = "a.example.com".parse().unwrap();
        s.begin_message();
        s.write_name(&a).unwrap();
        let len = s.len();
        s.reset();
        assert!(s.is_empty());
        s.begin_message();
        s.write_name(&a).unwrap();
        assert_eq!(s.len(), len);
    }

    #[test]
    fn abort_message_rolls_back() {
        let mut s = ScratchBuf::new();
        s.write_u16(0xAAAA).unwrap();
        let base = s.begin_message();
        s.write_u32(0xDEAD_BEEF).unwrap();
        s.abort_message();
        assert_eq!(s.len(), base);
        assert_eq!(s.as_slice(), &[0xAA, 0xAA]);
    }

    #[test]
    fn forward_pointer_rejected() {
        // A pointer to its own offset would loop forever.
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::BadPointer { .. })));
    }

    #[test]
    fn unsupported_label_type_rejected() {
        let buf = [0b1000_0001, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            r.read_name(),
            Err(WireError::UnsupportedLabelType(_))
        ));
    }
}
