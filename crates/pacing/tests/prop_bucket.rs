//! Property tests for the shared token bucket: no offered load pattern
//! may push grants (server side) or release times (client side) past the
//! configured budget over *any* observation window, and a saturated
//! bucket must converge to exactly its rate.

use proptest::prelude::*;
use zdns_pacing::{TokenBucket, SECONDS};

/// Count how many of `times` fall inside `[start, start + window)`.
fn in_window(times: &[u64], start: u64, window: u64) -> usize {
    times
        .iter()
        .filter(|&&t| t >= start && t < start + window)
        .count()
}

/// The budget ceiling for one window: the initial burst plus refill over
/// the window, with one token of slack for boundary rounding.
fn ceiling(rate: f64, burst: f64, window: u64) -> usize {
    (burst + rate * window as f64 / SECONDS as f64).ceil() as usize + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn try_take_never_exceeds_budget_over_any_window(
        rate_x10 in 10u64..5_000,
        burst in 1u64..64,
        gaps in proptest::collection::vec(0u64..20_000_000, 50..400),
    ) {
        let rate = rate_x10 as f64 / 10.0;
        let mut tb = TokenBucket::new(rate, burst as f64);
        let mut now = 0u64;
        let mut grants = Vec::new();
        for gap in &gaps {
            now += gap;
            if tb.try_take(now) {
                grants.push(now);
            }
        }
        // Slide a set of windows over the grant times; none may hold more
        // than burst + rate * window tokens.
        for window in [50 * zdns_pacing::MILLIS, 500 * zdns_pacing::MILLIS, SECONDS] {
            for &start in &grants {
                prop_assert!(
                    in_window(&grants, start, window) <= ceiling(rate, burst as f64, window),
                    "window {window} from {start} exceeded budget"
                );
            }
        }
    }

    #[test]
    fn reserve_release_times_never_exceed_budget_over_any_window(
        rate_x10 in 10u64..5_000,
        burst in 1u64..64,
        gaps in proptest::collection::vec(0u64..5_000_000, 50..400),
    ) {
        let rate = rate_x10 as f64 / 10.0;
        let mut tb = TokenBucket::new(rate, burst as f64);
        let mut now = 0u64;
        let mut releases = Vec::new();
        for gap in &gaps {
            now += gap;
            let at = tb.reserve(now);
            prop_assert!(at >= now, "release in the past");
            releases.push(at);
        }
        releases.sort_unstable();
        for window in [100 * zdns_pacing::MILLIS, SECONDS] {
            for &start in &releases {
                prop_assert!(
                    in_window(&releases, start, window) <= ceiling(rate, burst as f64, window),
                    "window {window} from {start} exceeded budget"
                );
            }
        }
    }

    #[test]
    fn saturated_reserve_converges_to_rate(
        rate in 10u64..2_000,
        n in 100usize..600,
    ) {
        // Demand everything up front: the bucket must spread N sends over
        // exactly (N - burst) / rate seconds.
        let burst = 1.0;
        let mut tb = TokenBucket::new(rate as f64, burst);
        let mut last = 0u64;
        for _ in 0..n {
            last = tb.reserve(0);
        }
        let expected = ((n as f64 - burst) / rate as f64 * SECONDS as f64) as i64;
        let got = last as i64;
        // ±1% plus ceil slack: one nanosecond per reservation.
        let tolerance = expected / 100 + n as i64 + 2;
        prop_assert!(
            (got - expected).abs() <= tolerance,
            "{n} sends at {rate}/s: last release {got}, expected {expected}"
        );
    }
}
