//! The scan-wide admission credit pool.
//!
//! A real-socket scan runs a handful of reactor workers, but the user's
//! contract is scan-wide: `--max-in-flight N` means *N lookups actively
//! on the wire across the whole scan*, and the pacing budgets are
//! likewise whole-scan numbers. Splitting those totals statically across
//! workers (the pre-pipeline design) strands capacity: a worker whose
//! destinations are all serving backoff penalties sits on its slice of
//! the window while its siblings queue behind their own smaller slices.
//!
//! [`CreditPool`] replaces the static split with leasing. One credit is
//! the right to keep one lookup *active* (a query on the wire or about
//! to be). Workers lease credits as they admit work, return them when
//! lookups retire — and return them early when a lookup's every
//! outstanding send is parked behind a backoff penalty, which is what
//! lets siblings absorb a stranded window. The pool is a pair of
//! atomics: leasing on the admission hot path costs one CAS and zero
//! heap allocations, a property the `zero_alloc` integration test in
//! `zdns-core` enforces.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A shared pool of admission credits, leased and returned by the
/// drivers of one scan. Thread-safe; clone the `Arc` it lives in.
#[derive(Debug)]
pub struct CreditPool {
    total: usize,
    available: AtomicUsize,
    leases: AtomicU64,
    returns: AtomicU64,
}

impl CreditPool {
    /// A pool of `total` credits (at least 1), initially all available.
    pub fn new(total: usize) -> CreditPool {
        let total = total.max(1);
        CreditPool {
            total,
            available: AtomicUsize::new(total),
            leases: AtomicU64::new(0),
            returns: AtomicU64::new(0),
        }
    }

    /// The pool's capacity.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Credits currently unleased. Advisory: another worker may lease
    /// them between this read and a [`CreditPool::try_lease`].
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Lease `n` credits, all or nothing. Returns false when fewer than
    /// `n` are available right now (the caller should retry on its next
    /// poll pass, not spin).
    pub fn try_lease(&self, n: usize) -> bool {
        if n == 0 {
            return true;
        }
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur < n {
                return false;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.leases.fetch_add(n as u64, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `n` leased credits to the pool.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let prev = self.available.fetch_add(n, Ordering::AcqRel);
        debug_assert!(
            prev + n <= self.total,
            "credit pool over-released: {} + {n} > {}",
            prev,
            self.total
        );
        self.returns.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Lifetime lease operations (telemetry).
    pub fn leases(&self) -> u64 {
        self.leases.load(Ordering::Relaxed)
    }

    /// Lifetime returned credits (telemetry).
    pub fn returns(&self) -> u64 {
        self.returns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lease_is_all_or_nothing() {
        let pool = CreditPool::new(4);
        assert!(pool.try_lease(3));
        assert_eq!(pool.available(), 1);
        assert!(!pool.try_lease(2), "only 1 left");
        assert!(pool.try_lease(1));
        assert_eq!(pool.available(), 0);
        pool.release(4);
        assert_eq!(pool.available(), 4);
        assert_eq!(pool.leases(), 4);
        assert_eq!(pool.returns(), 4);
    }

    #[test]
    fn zero_sized_operations_are_noops() {
        let pool = CreditPool::new(2);
        assert!(pool.try_lease(0));
        pool.release(0);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.leases(), 0);
        assert_eq!(pool.returns(), 0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let pool = CreditPool::new(0);
        assert_eq!(pool.total(), 1);
        assert!(pool.try_lease(1));
    }

    #[test]
    fn concurrent_leases_never_exceed_total() {
        let pool = Arc::new(CreditPool::new(64));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            threads.push(std::thread::spawn(move || {
                let mut held = 0usize;
                for _ in 0..10_000 {
                    if pool.try_lease(1) {
                        held += 1;
                        if held > 12 {
                            pool.release(held);
                            held = 0;
                        }
                    }
                }
                pool.release(held);
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.available(), 64, "every lease was returned");
        assert_eq!(pool.leases(), pool.returns());
    }
}
