//! # zdns-pacing
//!
//! Rate-budgeting primitives shared by every layer that schedules packet
//! sends: the discrete-event simulator's resolver models (the *server*
//! side of rate limiting — Google Public DNS's per-client-IP buckets cost
//! the paper's /32 scans a ~6× success drop) and the real-socket drivers'
//! client-side pacer (the *polite scanning* countermeasure). One
//! [`TokenBucket`] implementation serves both, so the simulated limiter
//! and the client pacer can never drift apart semantically.
//!
//! Time is plain nanoseconds (`u64`) — the same representation as
//! `zdns_netsim::SimTime` — so the types work identically under virtual
//! and wall-clock time.
//!
//! # Example
//!
//! ```
//! use zdns_pacing::{TokenBucket, SECONDS};
//!
//! let mut bucket = TokenBucket::new(2.0, 1.0); // 2 tokens/s, burst of 1
//! assert!(bucket.try_take(0));
//! assert!(!bucket.try_take(0)); // burst exhausted, rejected now...
//! assert!(bucket.try_take(SECONDS)); // ...but refilled a second later
//! ```

#![warn(missing_docs)]

mod atomic_bucket;
mod credit;

pub use atomic_bucket::{AtomicBucket, SlotLease};
pub use credit::CreditPool;

use std::net::Ipv4Addr;

/// Nanoseconds — wall-clock or virtual, callers decide.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECONDS: Nanos = 1_000_000_000;

/// A token bucket: `rate` tokens/second, capacity `burst`.
///
/// Two consumption styles:
///
/// * [`TokenBucket::try_take`] — classic server-side limiting: take a
///   token if one is available *now*, else reject. Never goes negative.
/// * [`TokenBucket::reserve`] — client-side pacing: always succeeds,
///   debiting the bucket (possibly into debt) and returning the earliest
///   instant the caller may act. Consecutive reservations get distinct,
///   `1/rate`-spaced release times, so a queue of deferred sends drains
///   at exactly the configured rate with no thundering herd.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: Nanos,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: 0,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now > self.last_refill {
            let dt = (now - self.last_refill) as f64 / SECONDS as f64;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now: Nanos) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Debit one token unconditionally and return the earliest instant
    /// the debited send may go on the wire: `now` when a token was
    /// available, otherwise the future time at which the accumulated debt
    /// is repaid by refill.
    pub fn reserve(&mut self, now: Nanos) -> Nanos {
        self.refill(now);
        self.tokens -= 1.0;
        if self.tokens >= 0.0 {
            return now;
        }
        // tokens is negative: the bucket owes |tokens| tokens of refill
        // before this reservation is covered.
        let wait_secs = -self.tokens / self.rate;
        now + (wait_secs * SECONDS as f64).ceil() as Nanos
    }

    /// Current token count (after refill), for tests and introspection.
    pub fn available(&mut self, now: Nanos) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The configured fill rate in tokens/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// How many arbitrary entries a full [`ClientBuckets`] table probes when
/// it must make room: the victim is the stalest of the probed set. Keeps
/// eviction O(1) per packet even under a spoofed-source flood, where every
/// datagram is a table miss.
const EVICT_PROBES: usize = 16;

/// A bounded per-client token-bucket table — the server side's
/// response-rate-limiting gate (the same mechanism Google Public DNS
/// applies to the paper's /32 scans, now pointed at *our* clients).
///
/// Differences from the scanning pacer's host table:
///
/// * **`try_take` flavor**: over-budget clients are *refused* (the
///   datagram is dropped), never deferred — a server must shed load, not
///   queue it for an unauthenticated source.
/// * **Hard capacity bound**: a spoofed-source flood can mint one entry
///   per forged /32, so the table refuses to grow past `capacity`.
///   Admitting a new client at capacity evicts the stalest of
///   `EVICT_PROBES` arbitrary entries (idle entries go first) and
///   counts the eviction, so memory stays bounded and the pressure is
///   observable.
#[derive(Debug)]
pub struct ClientBuckets {
    rate: f64,
    burst: f64,
    capacity: usize,
    idle_after: Nanos,
    clients: std::collections::HashMap<Ipv4Addr, ClientEntry>,
    evictions: u64,
    refusals: u64,
}

#[derive(Debug)]
struct ClientEntry {
    bucket: TokenBucket,
    last_seen: Nanos,
}

impl ClientBuckets {
    /// Table for `rate_pps` responses/second per client IP, holding at
    /// most `capacity` client entries. `rate_pps <= 0` disables the gate
    /// (every admit succeeds, nothing is tracked). Burst is one second's
    /// budget, clamped to `[1, 32]` — enough to absorb a stub resolver's
    /// retry burst without letting a quiet client save up an attack.
    pub fn new(rate_pps: f64, capacity: usize) -> ClientBuckets {
        ClientBuckets {
            rate: rate_pps,
            burst: rate_pps.clamp(1.0, 32.0),
            capacity: capacity.max(1),
            idle_after: 10 * SECONDS,
            clients: std::collections::HashMap::new(),
            evictions: 0,
            refusals: 0,
        }
    }

    /// True when a positive per-client rate was configured.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Admit one response to `client` at `now`. Returns false when the
    /// client is over budget — the caller drops the query silently (UDP;
    /// TCP is the client's escape hatch, as in classic DNS RRL).
    pub fn admit(&mut self, client: Ipv4Addr, now: Nanos) -> bool {
        if !self.enabled() {
            return true;
        }
        if !self.clients.contains_key(&client) && self.clients.len() >= self.capacity {
            self.evict_one(now);
        }
        let (rate, burst) = (self.rate, self.burst);
        let entry = self.clients.entry(client).or_insert_with(|| ClientEntry {
            bucket: TokenBucket::new(rate, burst),
            last_seen: now,
        });
        entry.last_seen = now;
        let ok = entry.bucket.try_take(now);
        if !ok {
            self.refusals += 1;
        }
        ok
    }

    /// Evict the stalest of up to [`EVICT_PROBES`] arbitrary entries,
    /// preferring one idle past `idle_after`. HashMap iteration order is
    /// effectively random, so repeated probes cover the table without a
    /// full O(n) sweep per packet.
    fn evict_one(&mut self, now: Nanos) {
        let mut victim: Option<(Ipv4Addr, Nanos)> = None;
        for (ip, entry) in self.clients.iter().take(EVICT_PROBES) {
            if victim.is_none_or(|(_, seen)| entry.last_seen < seen) {
                victim = Some((*ip, entry.last_seen));
            }
            if entry.last_seen.saturating_add(self.idle_after) <= now {
                victim = Some((*ip, entry.last_seen));
                break;
            }
        }
        if let Some((ip, _)) = victim {
            self.clients.remove(&ip);
            self.evictions += 1;
        }
    }

    /// Number of client IPs currently tracked (bounded by capacity).
    pub fn tracked(&self) -> usize {
        self.clients.len()
    }

    /// Entries evicted to keep the table within its capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Admissions refused because the client was over budget.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }
}

/// Verdict of a send-gate admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PaceDecision {
    /// Send immediately.
    Ready,
    /// Hold the send until `until`; the gate has already accounted for
    /// it, so the caller must send at that time *without* re-admitting.
    Defer {
        /// Absolute release time in the caller's clock domain.
        until: Nanos,
        /// True when the binding constraint was per-destination (host
        /// bucket or backoff penalty) rather than the global budget —
        /// what drivers report as a per-destination throttle event.
        host_limited: bool,
    },
}

/// The client-side pacing interface a send path consults before putting
/// a query on the wire. Implemented by `zdns_core::pacer::Pacer`;
/// accepted by the simulation engine as a pluggable hook so the same
/// pacer closes the loop under virtual time.
pub trait SendGate {
    /// Admit one send to `dest` at `now`. A [`PaceDecision::Defer`]
    /// reserves the send's budget — the caller must perform it at the
    /// returned release time without calling `admit` again.
    fn admit(&mut self, dest: Ipv4Addr, now: Nanos) -> PaceDecision;

    /// Feedback: a response from `dest` was delivered to its lookup.
    fn on_success(&mut self, dest: Ipv4Addr, now: Nanos);

    /// Feedback: a query to `dest` timed out or failed in transport —
    /// the real-socket stand-in for ICMP backpressure signals.
    fn on_failure(&mut self, dest: Ipv4Addr, now: Nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_limits() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert!(tb.try_take(0));
        }
        assert!(!tb.try_take(0));
        // After 100ms, one token has refilled.
        assert!(tb.try_take(SECONDS / 10));
        assert!(!tb.try_take(SECONDS / 10));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 10.0);
        assert!((tb.available(100 * SECONDS) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut granted = 0;
        // Offer 10x the rate for 10 simulated seconds.
        for i in 0..10_000u64 {
            let now = i * SECONDS / 1000;
            if tb.try_take(now) {
                granted += 1;
            }
        }
        // ~100/s for 10s plus the initial burst.
        assert!((1000..=1050).contains(&granted), "{granted}");
    }

    #[test]
    fn reserve_spaces_releases_at_exact_rate() {
        let mut tb = TokenBucket::new(100.0, 1.0);
        let first = tb.reserve(0);
        assert_eq!(first, 0, "burst token covers the first send");
        let mut prev = first;
        for _ in 0..50 {
            let next = tb.reserve(0);
            let gap = next - prev;
            // 1/rate = 10ms, ±1ns of ceil slack per reservation.
            assert!((gap as i64 - (SECONDS / 100) as i64).abs() <= 2, "{gap}");
            prev = next;
        }
    }

    #[test]
    fn client_buckets_limit_per_client() {
        let mut cb = ClientBuckets::new(2.0, 128);
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        assert!(cb.admit(a, 0));
        assert!(cb.admit(a, 0));
        assert!(!cb.admit(a, 0), "burst spent");
        assert!(cb.admit(b, 0), "clients are independent");
        assert!(cb.admit(a, SECONDS), "refilled after a second");
        assert_eq!(cb.refusals(), 1);
    }

    #[test]
    fn client_buckets_enforce_hard_cap() {
        let mut cb = ClientBuckets::new(100.0, 64);
        // A spoofed-source flood: every packet a fresh /32.
        for i in 0..10_000u32 {
            let ip = Ipv4Addr::from(0x0a00_0000 + i);
            cb.admit(ip, u64::from(i) * MILLIS);
        }
        assert!(cb.tracked() <= 64, "tracked {}", cb.tracked());
        assert_eq!(cb.evictions(), 10_000 - 64);
    }

    #[test]
    fn client_buckets_evict_idle_first() {
        let mut cb = ClientBuckets::new(100.0, 4);
        let idle = Ipv4Addr::new(10, 0, 0, 1);
        cb.admit(idle, 0);
        for i in 2..=4u8 {
            cb.admit(Ipv4Addr::new(10, 0, 0, i), 20 * SECONDS);
        }
        // Table full; the entry idle past the threshold goes first.
        cb.admit(Ipv4Addr::new(10, 0, 0, 5), 20 * SECONDS);
        assert_eq!(cb.evictions(), 1);
        assert_eq!(cb.tracked(), 4);
        assert!(
            cb.admit(idle, 20 * SECONDS),
            "idle entry was evicted, so this re-admits at full burst"
        );
        assert_eq!(cb.evictions(), 2, "re-adding at capacity evicts again");
    }

    #[test]
    fn client_buckets_disabled_at_zero_rate() {
        let mut cb = ClientBuckets::new(0.0, 4);
        assert!(!cb.enabled());
        for i in 0..100u8 {
            assert!(cb.admit(Ipv4Addr::new(10, 1, 0, i), 0));
        }
        assert_eq!(cb.tracked(), 0, "disabled gate tracks nothing");
        assert_eq!(cb.evictions(), 0);
    }

    #[test]
    fn reserve_debt_is_repaid_by_waiting() {
        let mut tb = TokenBucket::new(10.0, 1.0);
        let t1 = tb.reserve(0);
        let t2 = tb.reserve(0);
        assert_eq!(t1, 0);
        assert!(t2 >= SECONDS / 10);
        // By t2 the debt is exactly repaid: the next reservation lands
        // one more interval out.
        let t3 = tb.reserve(t2);
        assert!(t3 >= t2 + SECONDS / 10 - 2, "{t3} vs {t2}");
    }
}
