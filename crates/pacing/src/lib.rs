//! # zdns-pacing
//!
//! Rate-budgeting primitives shared by every layer that schedules packet
//! sends: the discrete-event simulator's resolver models (the *server*
//! side of rate limiting — Google Public DNS's per-client-IP buckets cost
//! the paper's /32 scans a ~6× success drop) and the real-socket drivers'
//! client-side pacer (the *polite scanning* countermeasure). One
//! [`TokenBucket`] implementation serves both, so the simulated limiter
//! and the client pacer can never drift apart semantically.
//!
//! Time is plain nanoseconds (`u64`) — the same representation as
//! `zdns_netsim::SimTime` — so the types work identically under virtual
//! and wall-clock time.

#![warn(missing_docs)]

mod credit;

pub use credit::CreditPool;

use std::net::Ipv4Addr;

/// Nanoseconds — wall-clock or virtual, callers decide.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECONDS: Nanos = 1_000_000_000;

/// A token bucket: `rate` tokens/second, capacity `burst`.
///
/// Two consumption styles:
///
/// * [`TokenBucket::try_take`] — classic server-side limiting: take a
///   token if one is available *now*, else reject. Never goes negative.
/// * [`TokenBucket::reserve`] — client-side pacing: always succeeds,
///   debiting the bucket (possibly into debt) and returning the earliest
///   instant the caller may act. Consecutive reservations get distinct,
///   `1/rate`-spaced release times, so a queue of deferred sends drains
///   at exactly the configured rate with no thundering herd.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: Nanos,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: 0,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now > self.last_refill {
            let dt = (now - self.last_refill) as f64 / SECONDS as f64;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now: Nanos) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Debit one token unconditionally and return the earliest instant
    /// the debited send may go on the wire: `now` when a token was
    /// available, otherwise the future time at which the accumulated debt
    /// is repaid by refill.
    pub fn reserve(&mut self, now: Nanos) -> Nanos {
        self.refill(now);
        self.tokens -= 1.0;
        if self.tokens >= 0.0 {
            return now;
        }
        // tokens is negative: the bucket owes |tokens| tokens of refill
        // before this reservation is covered.
        let wait_secs = -self.tokens / self.rate;
        now + (wait_secs * SECONDS as f64).ceil() as Nanos
    }

    /// Current token count (after refill), for tests and introspection.
    pub fn available(&mut self, now: Nanos) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The configured fill rate in tokens/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Verdict of a send-gate admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PaceDecision {
    /// Send immediately.
    Ready,
    /// Hold the send until `until`; the gate has already accounted for
    /// it, so the caller must send at that time *without* re-admitting.
    Defer {
        /// Absolute release time in the caller's clock domain.
        until: Nanos,
        /// True when the binding constraint was per-destination (host
        /// bucket or backoff penalty) rather than the global budget —
        /// what drivers report as a per-destination throttle event.
        host_limited: bool,
    },
}

/// The client-side pacing interface a send path consults before putting
/// a query on the wire. Implemented by `zdns_core::pacer::Pacer`;
/// accepted by the simulation engine as a pluggable hook so the same
/// pacer closes the loop under virtual time.
pub trait SendGate {
    /// Admit one send to `dest` at `now`. A [`PaceDecision::Defer`]
    /// reserves the send's budget — the caller must perform it at the
    /// returned release time without calling `admit` again.
    fn admit(&mut self, dest: Ipv4Addr, now: Nanos) -> PaceDecision;

    /// Feedback: a response from `dest` was delivered to its lookup.
    fn on_success(&mut self, dest: Ipv4Addr, now: Nanos);

    /// Feedback: a query to `dest` timed out or failed in transport —
    /// the real-socket stand-in for ICMP backpressure signals.
    fn on_failure(&mut self, dest: Ipv4Addr, now: Nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_limits() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert!(tb.try_take(0));
        }
        assert!(!tb.try_take(0));
        // After 100ms, one token has refilled.
        assert!(tb.try_take(SECONDS / 10));
        assert!(!tb.try_take(SECONDS / 10));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 10.0);
        assert!((tb.available(100 * SECONDS) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut granted = 0;
        // Offer 10x the rate for 10 simulated seconds.
        for i in 0..10_000u64 {
            let now = i * SECONDS / 1000;
            if tb.try_take(now) {
                granted += 1;
            }
        }
        // ~100/s for 10s plus the initial burst.
        assert!((1000..=1050).contains(&granted), "{granted}");
    }

    #[test]
    fn reserve_spaces_releases_at_exact_rate() {
        let mut tb = TokenBucket::new(100.0, 1.0);
        let first = tb.reserve(0);
        assert_eq!(first, 0, "burst token covers the first send");
        let mut prev = first;
        for _ in 0..50 {
            let next = tb.reserve(0);
            let gap = next - prev;
            // 1/rate = 10ms, ±1ns of ceil slack per reservation.
            assert!((gap as i64 - (SECONDS / 100) as i64).abs() <= 2, "{gap}");
            prev = next;
        }
    }

    #[test]
    fn reserve_debt_is_repaid_by_waiting() {
        let mut tb = TokenBucket::new(10.0, 1.0);
        let t1 = tb.reserve(0);
        let t2 = tb.reserve(0);
        assert_eq!(t1, 0);
        assert!(t2 >= SECONDS / 10);
        // By t2 the debt is exactly repaid: the next reservation lands
        // one more interval out.
        let t3 = tb.reserve(t2);
        assert!(t3 >= t2 + SECONDS / 10 - 2, "{t3} vs {t2}");
    }
}
