//! Lock-free token bucket for the scan-wide global budget.
//!
//! [`AtomicBucket`] is the concurrent counterpart of
//! [`TokenBucket::reserve`](crate::TokenBucket::reserve): it always
//! grants, debiting the budget (possibly into debt) and handing back
//! *when* each debited send may go on the wire. The trick that makes it
//! one atomic instead of a mutex is representing the bucket as a virtual
//! **level cursor** `L` (the GCRA "theoretical arrival time"): with
//! `interval = 1/rate` seconds per token,
//!
//! ```text
//! tokens(now) = (now - L) / interval      (capped at burst)
//! ```
//!
//! Reserving `n` tokens advances `L` by `n * interval` — a single
//! compare-and-swap, in the spirit of [`CreditPool`](crate::CreditPool)'s
//! two-atomic lease loop. The `n` reserved slots occupy consecutive
//! virtual times `(base, base + n*interval]`, so callers that lease a
//! *block* of tokens up front (one CAS per block, not per send) can
//! compute each send's release time locally without touching shared
//! state, and the global schedule still spaces sends at exactly the
//! configured rate: slots are globally unique whether they were claimed
//! one at a time or eight at a time.
//!
//! Unused slots go back with [`AtomicBucket::unreserve`] (the cursor
//! walks backwards); the burst cap is re-applied on the next reserve, so
//! returning stale tokens can never mint budget beyond what a
//! continuously-refilling bucket would hold.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::{Nanos, SECONDS};

/// A contiguous run of token slots granted by [`AtomicBucket::reserve`].
///
/// Slot `k` (1-based) of the lease is covered by refill at virtual time
/// `base + k * interval`; the send it backs may go on the wire at
/// `max(now, base + k * interval)` — identical to what `k` consecutive
/// [`TokenBucket::reserve`](crate::TokenBucket::reserve) calls at `now`
/// would have returned.
#[derive(Debug, Clone, Copy)]
pub struct SlotLease {
    /// Virtual level cursor before this lease was applied (after the
    /// burst cap). May be negative while the initial burst lasts.
    pub base: i64,
    /// Number of slots reserved.
    pub count: u32,
}

/// Lock-free always-grant token bucket: `rate` tokens/second, capacity
/// `burst`, state in one `AtomicI64`.
#[derive(Debug)]
pub struct AtomicBucket {
    rate: f64,
    /// Nanoseconds of refill per token (`1e9 / rate`).
    interval: f64,
    /// Burst capacity expressed in virtual nanoseconds.
    burst_ns: i64,
    /// The virtual level cursor `L`; `tokens(now) = (now - L)/interval`.
    level: AtomicI64,
    cas_retries: AtomicU64,
}

impl AtomicBucket {
    /// New bucket, initially full (like [`TokenBucket::new`](crate::TokenBucket::new)).
    ///
    /// `rate` must be positive; `burst` is clamped to at least one token.
    pub fn new(rate: f64, burst: f64) -> AtomicBucket {
        assert!(rate > 0.0, "AtomicBucket requires a positive rate");
        let interval = SECONDS as f64 / rate;
        let burst_ns = (burst.max(1.0) * interval).round() as i64;
        AtomicBucket {
            rate,
            interval,
            burst_ns,
            // tokens(0) = (0 - L)/interval = burst  =>  L = -burst_ns.
            level: AtomicI64::new(-burst_ns),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// The configured fill rate in tokens/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Nanoseconds of refill backing one token.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Reserve `n` consecutive token slots in one CAS loop. Always
    /// grants; debt shows up as slot release times in the future.
    pub fn reserve(&self, now: Nanos, n: u32) -> SlotLease {
        debug_assert!(n > 0, "reserving zero slots");
        let now = now as i64;
        let span = (f64::from(n) * self.interval).round() as i64;
        let mut cur = self.level.load(Ordering::Acquire);
        loop {
            // Refill cap: the bucket never holds more than `burst`
            // tokens, i.e. L never trails `now` by more than burst_ns.
            let base = cur.max(now - self.burst_ns);
            match self.level.compare_exchange_weak(
                cur,
                base + span,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return SlotLease { base, count: n },
                Err(actual) => {
                    self.cas_retries.fetch_add(1, Ordering::Relaxed);
                    cur = actual;
                }
            }
        }
    }

    /// Return `n` unused slots (the tail of a lease): the level cursor
    /// walks back so other callers can claim the budget. The burst cap on
    /// the next [`reserve`](AtomicBucket::reserve) bounds how much
    /// returned budget can accumulate.
    pub fn unreserve(&self, n: u32) {
        if n == 0 {
            return;
        }
        let span = (f64::from(n) * self.interval).round() as i64;
        self.level.fetch_sub(span, Ordering::AcqRel);
    }

    /// Release time for slot `k` (1-based) of a lease taken at `now`:
    /// `max(now, base + k*interval)`, the moment refill covers the slot.
    pub fn slot_release(&self, lease: SlotLease, k: u32, now: Nanos) -> Nanos {
        debug_assert!(k >= 1 && k <= lease.count);
        let slot = lease.base + (f64::from(k) * self.interval).round() as i64;
        now.max(slot.max(0) as Nanos)
    }

    /// Current token count (after the burst cap), for tests and
    /// introspection. Racy by nature — a snapshot, not a guarantee.
    pub fn available(&self, now: Nanos) -> f64 {
        let level = self.level.load(Ordering::Acquire);
        ((now as i64 - level) as f64 / self.interval).min(self.burst_ns as f64 / self.interval)
    }

    /// CAS loop iterations that lost the race and retried — the
    /// contention signal the drivers surface as `pacer_cas_retries`.
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TokenBucket;

    #[test]
    fn single_slot_reserves_match_the_mutex_bucket() {
        let atomic = AtomicBucket::new(100.0, 1.0);
        let mut mutex = TokenBucket::new(100.0, 1.0);
        for i in 0..50u64 {
            let now = i * SECONDS / 500; // offer 5x the rate
            let lease = atomic.reserve(now, 1);
            let got = atomic.slot_release(lease, 1, now);
            let want = mutex.reserve(now);
            let diff = got.abs_diff(want);
            assert!(diff <= 2, "slot {i}: atomic {got} vs mutex {want}");
        }
    }

    #[test]
    fn block_lease_slots_are_spaced_at_the_rate() {
        let bucket = AtomicBucket::new(1000.0, 1.0);
        let lease = bucket.reserve(0, 8);
        let mut prev = bucket.slot_release(lease, 1, 0);
        for k in 2..=8 {
            let next = bucket.slot_release(lease, k, 0);
            let gap = next - prev;
            assert!(
                (gap as i64 - (SECONDS / 1000) as i64).abs() <= 2,
                "slot {k} gap {gap}"
            );
            prev = next;
        }
    }

    #[test]
    fn unreserve_returns_budget() {
        let bucket = AtomicBucket::new(10.0, 1.0);
        let lease = bucket.reserve(0, 8);
        assert_eq!(bucket.slot_release(lease, 1, 0), 0, "burst covers slot 1");
        // Give 7 slots back: the next reserve starts where slot 2 began.
        bucket.unreserve(7);
        let next = bucket.reserve(0, 1);
        let release = bucket.slot_release(next, 1, 0);
        assert!(
            release.abs_diff(SECONDS / 10) <= 2,
            "release {release} expected ~{}",
            SECONDS / 10
        );
    }

    #[test]
    fn refill_caps_at_burst() {
        let bucket = AtomicBucket::new(1000.0, 10.0);
        // Idle for 100 virtual seconds: at most `burst` tokens saved up.
        assert!((bucket.available(100 * SECONDS) - 10.0).abs() < 1e-6);
        let lease = bucket.reserve(100 * SECONDS, 11);
        // 10 burst tokens are free; the 11th waits one interval.
        assert_eq!(bucket.slot_release(lease, 10, 100 * SECONDS), 100 * SECONDS);
        assert!(bucket.slot_release(lease, 11, 100 * SECONDS) > 100 * SECONDS);
    }

    #[test]
    fn concurrent_reserves_claim_unique_slots() {
        use std::sync::Arc;
        let bucket = Arc::new(AtomicBucket::new(1_000_000.0, 1.0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&bucket);
            handles.push(std::thread::spawn(move || {
                let mut bases = Vec::new();
                for _ in 0..1000 {
                    bases.push(b.reserve(0, 4).base);
                }
                bases
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "every block got a distinct base");
    }
}
