//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Implements random-input property testing without shrinking: strategies
//! generate values from a deterministic RNG, the `proptest!` macro expands
//! each property into a `#[test]` loop over `ProptestConfig::cases` cases.
//! The strategy combinators mirror the real crate's names (`any`,
//! `prop_map`, `prop_oneof!`, `proptest::collection::vec`, integer-range
//! strategies, `prop::sample::Index`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The RNG driving test-case generation.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic default seed (override with `PROPTEST_SEED`).
    pub fn deterministic() -> TestRng {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5DEECE66D);
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform value below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.0.next_u64() % bound
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical arbitrary-value strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize, T: Arbitrary> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = end as u128 - start as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span as u64) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size specifications for [`vec()`].
    pub trait SizeRange {
        /// Draw a length from the range.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace from the real crate's prelude.
pub mod prop {
    pub use crate::collection;

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose size is only known at use time.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a collection of length `len` (> 0).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Box a strategy for [`prop_oneof!`] (keeps type inference simple).
#[doc(hidden)]
pub fn __box_strategy<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

/// Uniformly choose among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__box_strategy($strategy)),+])
    };
}

/// Assert within a property (no shrinking here, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each function runs `cases` times with fresh
/// random inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($config:expr); $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let run = || $body;
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!("proptest: property {} failed at case {case}", stringify!($name));
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic();
        let v = crate::collection::vec(any::<u8>(), 1..=20).generate(&mut rng);
        assert!((1..=20).contains(&v.len()));
        let n = (0u16..=20).generate(&mut rng);
        assert!(n <= 20);
        let mapped = any::<u8>().prop_map(|b| b as u32 + 1).generate(&mut rng);
        assert!((1..=256).contains(&mapped));
        let one_of = prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
        assert!(one_of == 1 || one_of == 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_expands_and_runs(x in any::<u16>(), v in crate::collection::vec(any::<u8>(), 0..=4)) {
            prop_assert!(v.len() <= 4);
            prop_assert_eq!(x as u32 as u16, x);
        }
    }
}
