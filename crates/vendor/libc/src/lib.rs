//! Minimal in-tree stand-in for the `libc` crate.
//!
//! The container builds fully offline, so this shim declares only the raw
//! FFI surface the workspace's batched UDP I/O layer uses:
//!
//! * the `sendmmsg(2)`/`recvmmsg(2)` entry points and the structs they
//!   take (`iovec`, `sockaddr_in`, `msghdr`, `mmsghdr`, `timespec`);
//! * the `io_uring` syscalls (`io_uring_setup` / `io_uring_enter` /
//!   `io_uring_register`, reached through `syscall(2)` — glibc exports no
//!   wrappers), the mmap'd SQ/CQ ring layouts (`io_uring_params`,
//!   `io_uring_sqe`, `io_uring_cqe`, the ring-offset structs) and the
//!   opcode/flag constants the `UringIo` backend uses;
//! * `sched_setaffinity` for core-pinned workers and the raw
//!   `socket`/`setsockopt`/`bind` trio needed to build `SO_REUSEPORT`
//!   shard groups (the option must be set before `bind`, which
//!   `std::net::UdpSocket::bind` cannot do).
//!
//! Everything is Linux ABI; non-Linux targets compile the crate but get
//! no extern declarations, and callers are expected to gate on
//! [`MMSG_SUPPORTED`] / [`URING_SUPPORTED`] / `cfg(target_os = "linux")`
//! and fall back to per-datagram `std` socket calls.

#![warn(missing_docs)]
#![allow(non_camel_case_types)]

pub use std::ffi::{c_int, c_long, c_uint, c_void};

/// Whether this target has the `sendmmsg`/`recvmmsg` declarations.
pub const MMSG_SUPPORTED: bool = cfg!(any(target_os = "linux", target_os = "android"));

/// Whether this target has the `io_uring` syscall declarations. Runtime
/// support still has to be probed (`io_uring_setup` returns `ENOSYS` on
/// old kernels, `EPERM` where `io_uring_disabled` is set).
pub const URING_SUPPORTED: bool = cfg!(any(target_os = "linux", target_os = "android"));

/// `AF_INET` for [`sockaddr_in::sin_family`].
pub const AF_INET: u16 = 2;

/// Non-blocking flag for one `sendmmsg`/`recvmmsg` call, regardless of
/// the socket's own blocking mode.
pub const MSG_DONTWAIT: c_int = 0x40;

/// `recvmmsg` flag: return as soon as at least one datagram has been
/// received instead of blocking for the full `vlen`.
pub const MSG_WAITFORONE: c_int = 0x10000;

/// One scatter/gather segment (`struct iovec`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    /// Segment base address.
    pub iov_base: *mut c_void,
    /// Segment length in bytes.
    pub iov_len: usize,
}

/// An IPv4 socket address (`struct sockaddr_in`). Port and address are
/// stored big-endian, as the kernel expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    /// Address family ([`AF_INET`]).
    pub sin_family: u16,
    /// Port, network byte order.
    pub sin_port: u16,
    /// IPv4 address, network byte order.
    pub sin_addr: u32,
    /// Padding to `sizeof(struct sockaddr)`.
    pub sin_zero: [u8; 8],
}

impl sockaddr_in {
    /// An all-zero address, ready to be filled in by `recvmmsg`.
    pub fn zeroed() -> sockaddr_in {
        sockaddr_in {
            sin_family: 0,
            sin_port: 0,
            sin_addr: 0,
            sin_zero: [0; 8],
        }
    }

    /// Build a kernel-ready address from host-order parts.
    pub fn from_parts(addr: std::net::Ipv4Addr, port: u16) -> sockaddr_in {
        sockaddr_in {
            sin_family: AF_INET,
            sin_port: port.to_be(),
            sin_addr: u32::from(addr).to_be(),
            sin_zero: [0; 8],
        }
    }

    /// Recover the host-order socket address, if this is an IPv4 one.
    pub fn to_addr(self) -> Option<std::net::SocketAddr> {
        if self.sin_family != AF_INET {
            return None;
        }
        Some(std::net::SocketAddr::new(
            std::net::IpAddr::V4(std::net::Ipv4Addr::from(u32::from_be(self.sin_addr))),
            u16::from_be(self.sin_port),
        ))
    }
}

/// One message header (`struct msghdr`), x86-64 Linux layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct msghdr {
    /// Peer address buffer (in: for `sendmmsg`; out: for `recvmmsg`).
    pub msg_name: *mut c_void,
    /// Size of the buffer `msg_name` points at.
    pub msg_namelen: u32,
    /// Scatter/gather array.
    pub msg_iov: *mut iovec,
    /// Number of `iovec` entries.
    pub msg_iovlen: usize,
    /// Ancillary data (unused here: null).
    pub msg_control: *mut c_void,
    /// Ancillary data length.
    pub msg_controllen: usize,
    /// Flags on received messages (e.g. `MSG_TRUNC`).
    pub msg_flags: c_int,
}

/// One entry of a `sendmmsg`/`recvmmsg` vector (`struct mmsghdr`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct mmsghdr {
    /// The message itself.
    pub msg_hdr: msghdr,
    /// Bytes transferred for this entry (filled in by the kernel).
    pub msg_len: c_uint,
}

/// Kernel timespec for the `recvmmsg` timeout parameter.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: i64,
    /// Nanoseconds.
    pub tv_nsec: i64,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
extern "C" {
    /// Send up to `vlen` datagrams in one syscall. Returns the number
    /// sent (≥1) or -1 with `errno` if none could be sent.
    pub fn sendmmsg(sockfd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;

    /// Receive up to `vlen` datagrams in one syscall. Returns the number
    /// received (≥1) or -1 with `errno`.
    pub fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut timespec,
    ) -> c_int;

    /// Raw indirect syscall — the only road to the `io_uring_*` entry
    /// points, which glibc does not wrap. Sets `errno` on failure like
    /// any other libc call.
    pub fn syscall(num: c_long, ...) -> c_long;

    /// Map a kernel region (the io_uring SQ/CQ rings and SQE array) into
    /// this address space.
    pub fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;

    /// Unmap a region previously mapped with [`mmap`].
    pub fn munmap(addr: *mut c_void, len: usize) -> c_int;

    /// Close a raw file descriptor (the io_uring ring fd is not wrapped
    /// in any std type).
    pub fn close(fd: c_int) -> c_int;

    /// Set a socket option; needed pre-`bind` for `SO_REUSEPORT`, which
    /// `std::net::UdpSocket` cannot express.
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        len: u32,
    ) -> c_int;

    /// Create a raw socket (for reuse-port groups the option must be set
    /// between `socket` and `bind`).
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;

    /// Bind a raw IPv4 socket.
    pub fn bind(fd: c_int, addr: *const sockaddr_in, len: u32) -> c_int;

    /// Mark a bound stream socket as passive (reuse-port TCP listener
    /// groups need the same socket→setsockopt→bind dance as UDP, plus
    /// this).
    pub fn listen(fd: c_int, backlog: c_int) -> c_int;

    /// Pin the calling thread (`pid == 0`) to the CPUs set in `mask`
    /// (`mask` is a bitmask of `cpusetsize` bytes).
    pub fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
}

// ---------------------------------------------------------------------------
// io_uring ABI
// ---------------------------------------------------------------------------

/// `io_uring_setup(2)` syscall number (arch-independent: io_uring
/// postdates the unified syscall table).
pub const SYS_IO_URING_SETUP: c_long = 425;
/// `io_uring_enter(2)` syscall number.
pub const SYS_IO_URING_ENTER: c_long = 426;
/// `io_uring_register(2)` syscall number.
pub const SYS_IO_URING_REGISTER: c_long = 427;

/// `mmap` protection: readable.
pub const PROT_READ: c_int = 0x1;
/// `mmap` protection: writable.
pub const PROT_WRITE: c_int = 0x2;
/// `mmap` flag: shared with the kernel (required for the rings).
pub const MAP_SHARED: c_int = 0x01;
/// `mmap` flag: pre-fault the pages so the hot path never page-faults.
pub const MAP_POPULATE: c_int = 0x8000;

/// `mmap` offset selecting the submission-queue ring.
pub const IORING_OFF_SQ_RING: i64 = 0;
/// `mmap` offset selecting the completion-queue ring.
pub const IORING_OFF_CQ_RING: i64 = 0x8000000;
/// `mmap` offset selecting the SQE array.
pub const IORING_OFF_SQES: i64 = 0x10000000;

/// `io_uring_enter` flag: block until `min_complete` CQEs are available.
pub const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
/// `io_uring_enter` flag: wake a sleeping SQ-poll kernel thread.
pub const IORING_ENTER_SQ_WAKEUP: u32 = 1 << 1;

/// Setup flag: kernel-side submission polling (no `enter` needed to
/// submit while the poller is awake).
pub const IORING_SETUP_SQPOLL: u32 = 1 << 1;
/// Setup flag: clamp oversized queue depths instead of failing `EINVAL`.
pub const IORING_SETUP_CLAMP: u32 = 1 << 4;

/// Feature bit: SQ and CQ rings share one mapping (kernel ≥ 5.4).
pub const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
/// Feature bit: completions are never dropped on CQ overflow.
pub const IORING_FEAT_NODROP: u32 = 1 << 1;

/// SQ-ring flag (in the mmap'd `flags` word): the SQ-poll thread went to
/// sleep and needs an [`IORING_ENTER_SQ_WAKEUP`] enter.
pub const IORING_SQ_NEED_WAKEUP: u32 = 1 << 0;

/// No-op SQE (used to probe that `enter` works at all).
pub const IORING_OP_NOP: u8 = 0;
/// `sendmsg(2)` as an SQE.
pub const IORING_OP_SENDMSG: u8 = 9;
/// `recvmsg(2)` as an SQE.
pub const IORING_OP_RECVMSG: u8 = 10;
/// Cancel a previously submitted SQE by `user_data` (teardown path).
pub const IORING_OP_ASYNC_CANCEL: u8 = 14;

/// Offsets into the mmap'd SQ ring (kernel-filled).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_sqring_offsets {
    /// Ring head (kernel-consumed index).
    pub head: u32,
    /// Ring tail (producer index, written by userspace).
    pub tail: u32,
    /// Index mask (`ring_entries - 1`).
    pub ring_mask: u32,
    /// Ring capacity.
    pub ring_entries: u32,
    /// Ring flags word ([`IORING_SQ_NEED_WAKEUP`] lives here).
    pub flags: u32,
    /// Count of SQEs the kernel dropped for being malformed.
    pub dropped: u32,
    /// Offset of the SQE index array.
    pub array: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved.
    pub resv2: u64,
}

/// Offsets into the mmap'd CQ ring (kernel-filled).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_cqring_offsets {
    /// Ring head (consumer index, written by userspace).
    pub head: u32,
    /// Ring tail (kernel-produced index).
    pub tail: u32,
    /// Index mask (`ring_entries - 1`).
    pub ring_mask: u32,
    /// Ring capacity.
    pub ring_entries: u32,
    /// CQEs dropped to overflow (never, with [`IORING_FEAT_NODROP`]).
    pub overflow: u32,
    /// Offset of the CQE array.
    pub cqes: u32,
    /// Ring flags word.
    pub flags: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved.
    pub resv2: u64,
}

/// In/out parameter block for `io_uring_setup(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_params {
    /// SQ depth (out: actual, possibly clamped).
    pub sq_entries: u32,
    /// CQ depth (out: actual; defaults to twice the SQ).
    pub cq_entries: u32,
    /// Setup flags ([`IORING_SETUP_SQPOLL`], …).
    pub flags: u32,
    /// CPU for the SQ-poll thread (with `IORING_SETUP_SQ_AFF`).
    pub sq_thread_cpu: u32,
    /// SQ-poll thread idle timeout in milliseconds.
    pub sq_thread_idle: u32,
    /// Out: feature bits ([`IORING_FEAT_SINGLE_MMAP`], …).
    pub features: u32,
    /// Ring fd to share a kernel worker pool with.
    pub wq_fd: u32,
    /// Reserved.
    pub resv: [u32; 3],
    /// Out: SQ ring field offsets.
    pub sq_off: io_sqring_offsets,
    /// Out: CQ ring field offsets.
    pub cq_off: io_cqring_offsets,
}

/// One submission-queue entry (64 bytes on every arch).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct io_uring_sqe {
    /// Operation ([`IORING_OP_SENDMSG`], …).
    pub opcode: u8,
    /// SQE flags (fixed-file, links, … — unused here).
    pub flags: u8,
    /// I/O priority / per-op u16 (multishot flags for recv ops).
    pub ioprio: u16,
    /// Target file descriptor.
    pub fd: i32,
    /// Offset / per-op u64.
    pub off: u64,
    /// Buffer or `msghdr` address / per-op u64.
    pub addr: u64,
    /// Buffer length / iovec count.
    pub len: u32,
    /// Per-op flags (`msg_flags` for SENDMSG/RECVMSG).
    pub op_flags: u32,
    /// Caller cookie, echoed verbatim in the matching CQE.
    pub user_data: u64,
    /// Registered-buffer index / per-op u16.
    pub buf_index: u16,
    /// Personality id.
    pub personality: u16,
    /// Splice fd / per-op u32.
    pub splice_fd_in: i32,
    /// Per-op extension area.
    pub addr3: u64,
    /// Padding to 64 bytes.
    pub __pad2: u64,
}

impl io_uring_sqe {
    /// An all-zero SQE ([`IORING_OP_NOP`] against fd 0), ready to fill.
    pub fn zeroed() -> io_uring_sqe {
        // SAFETY: io_uring_sqe is a plain-old-data repr(C) struct for
        // which all-zero bytes are a valid (NOP) value.
        unsafe { std::mem::zeroed() }
    }
}

/// One completion-queue entry.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct io_uring_cqe {
    /// The submitting SQE's `user_data`, verbatim.
    pub user_data: u64,
    /// Syscall-style result: `>= 0` on success, `-errno` on failure.
    pub res: i32,
    /// CQE flags (buffer id for provided-buffer ops — unused here).
    pub flags: u32,
}

/// `io_uring_setup(2)`: create a ring of (at least) `entries` SQEs.
/// Returns the ring fd, or -1 with `errno` (`ENOSYS` on pre-5.1 kernels,
/// `EPERM` where `io_uring_disabled` is set).
///
/// # Safety
/// `params` must point at a live, zero-initialized [`io_uring_params`].
#[cfg(any(target_os = "linux", target_os = "android"))]
pub unsafe fn io_uring_setup(entries: u32, params: *mut io_uring_params) -> c_int {
    syscall(
        SYS_IO_URING_SETUP,
        entries as c_long,
        params as usize as c_long,
    ) as c_int
}

/// `io_uring_enter(2)`: submit `to_submit` queued SQEs and/or wait for
/// `min_complete` completions ([`IORING_ENTER_GETEVENTS`]). Returns the
/// number of SQEs consumed, or -1 with `errno`.
///
/// # Safety
/// `fd` must be a live io_uring fd whose rings outlive the call.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub unsafe fn io_uring_enter(fd: c_int, to_submit: u32, min_complete: u32, flags: u32) -> c_int {
    syscall(
        SYS_IO_URING_ENTER,
        fd as c_long,
        to_submit as c_long,
        min_complete as c_long,
        flags as c_long,
        0 as c_long, // sigset
        0 as c_long, // sigset size
    ) as c_int
}

/// `io_uring_register(2)`: register resources (buffers, files) with the
/// ring. Declared for completeness/probing; the backend registers
/// nothing yet.
///
/// # Safety
/// `arg` must match what `opcode` expects (see the man page).
#[cfg(any(target_os = "linux", target_os = "android"))]
pub unsafe fn io_uring_register(fd: c_int, opcode: u32, arg: *const c_void, nr_args: u32) -> c_int {
    syscall(
        SYS_IO_URING_REGISTER,
        fd as c_long,
        opcode as c_long,
        arg as usize as c_long,
        nr_args as c_long,
    ) as c_int
}

// ---------------------------------------------------------------------------
// Socket / scheduler constants for sharding and pinning
// ---------------------------------------------------------------------------

/// `EPERM`: io_uring administratively disabled (`io_uring_disabled`).
pub const EPERM: c_int = 1;
/// `EINTR`: syscall interrupted by a signal; retry.
pub const EINTR: c_int = 4;
/// `EAGAIN`: would block (send buffer full → backpressure).
pub const EAGAIN: c_int = 11;
/// `EINVAL`: unsupported setup flags on this kernel.
pub const EINVAL: c_int = 22;
/// `ENOSYS`: io_uring syscalls absent (pre-5.1 kernel or seccomp).
pub const ENOSYS: c_int = 38;
/// `ENOBUFS`: kernel out of buffer space for a send.
pub const ENOBUFS: c_int = 105;
/// `ECANCELED`: an in-flight SQE was cancelled (teardown path).
pub const ECANCELED: c_int = 125;

/// `setsockopt` level for socket-wide options.
pub const SOL_SOCKET: c_int = 1;
/// Allow a group of sockets to bind one address; the kernel shards
/// incoming datagrams across the group by 4-tuple hash.
pub const SO_REUSEPORT: c_int = 15;
/// Stream socket type.
pub const SOCK_STREAM: c_int = 1;
/// Datagram socket type.
pub const SOCK_DGRAM: c_int = 2;
/// Close-on-exec socket creation flag.
pub const SOCK_CLOEXEC: c_int = 0x80000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockaddr_roundtrip() {
        let ip: std::net::Ipv4Addr = "192.0.2.7".parse().unwrap();
        let sa = sockaddr_in::from_parts(ip, 5353);
        assert_eq!(sa.sin_family, AF_INET);
        let back = sa.to_addr().unwrap();
        assert_eq!(back, "192.0.2.7:5353".parse().unwrap());
        assert_eq!(sockaddr_in::zeroed().to_addr(), None);
    }

    #[test]
    fn abi_layout_matches_linux() {
        // The kernel reads these layouts directly; a size drift would
        // corrupt the batch. (x86-64 Linux values.)
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<iovec>(), 16);
        #[cfg(target_pointer_width = "64")]
        {
            assert_eq!(std::mem::size_of::<msghdr>(), 56);
            assert_eq!(std::mem::size_of::<mmsghdr>(), 64);
        }
    }

    #[test]
    fn io_uring_abi_layout_matches_linux() {
        // The kernel writes ring offsets into io_uring_params and reads
        // SQEs straight out of the mmap'd array; any size drift here
        // corrupts the ring.
        assert_eq!(std::mem::size_of::<io_sqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_cqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_uring_params>(), 120);
        assert_eq!(std::mem::size_of::<io_uring_sqe>(), 64);
        assert_eq!(std::mem::size_of::<io_uring_cqe>(), 16);
        // user_data must sit at byte 32 of the SQE: the settle path keys
        // completions off it.
        assert_eq!(std::mem::offset_of!(io_uring_sqe, user_data), 32);
        assert_eq!(std::mem::offset_of!(io_uring_sqe, len), 24);
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    #[test]
    fn io_uring_setup_probe_reports_cleanly() {
        // Whatever the kernel says — a live fd or ENOSYS/EPERM — the
        // probe must come back as a plain fd-or-errno, never crash.
        let mut params = io_uring_params::default();
        let fd = unsafe { io_uring_setup(8, &mut params) };
        if fd >= 0 {
            assert!(params.sq_entries >= 8);
            assert!(params.cq_entries >= params.sq_entries);
            unsafe { close(fd) };
        } else {
            let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(0);
            assert!(errno != 0, "failed setup must set errno");
        }
    }
}
