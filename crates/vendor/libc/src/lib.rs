//! Minimal in-tree stand-in for the `libc` crate.
//!
//! The container builds fully offline, so this shim declares only the raw
//! FFI surface the workspace's batched UDP I/O layer uses: the
//! `sendmmsg(2)`/`recvmmsg(2)` entry points and the structs they take
//! (`iovec`, `sockaddr_in`, `msghdr`, `mmsghdr`, `timespec`). Everything
//! is Linux ABI; non-Linux targets compile the crate but get no extern
//! declarations, and callers are expected to gate on
//! [`MMSG_SUPPORTED`] / `cfg(target_os = "linux")` and fall back to
//! per-datagram `std` socket calls.

#![warn(missing_docs)]
#![allow(non_camel_case_types)]

pub use std::ffi::{c_int, c_uint, c_void};

/// Whether this target has the `sendmmsg`/`recvmmsg` declarations.
pub const MMSG_SUPPORTED: bool = cfg!(any(target_os = "linux", target_os = "android"));

/// `AF_INET` for [`sockaddr_in::sin_family`].
pub const AF_INET: u16 = 2;

/// Non-blocking flag for one `sendmmsg`/`recvmmsg` call, regardless of
/// the socket's own blocking mode.
pub const MSG_DONTWAIT: c_int = 0x40;

/// `recvmmsg` flag: return as soon as at least one datagram has been
/// received instead of blocking for the full `vlen`.
pub const MSG_WAITFORONE: c_int = 0x10000;

/// One scatter/gather segment (`struct iovec`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    /// Segment base address.
    pub iov_base: *mut c_void,
    /// Segment length in bytes.
    pub iov_len: usize,
}

/// An IPv4 socket address (`struct sockaddr_in`). Port and address are
/// stored big-endian, as the kernel expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    /// Address family ([`AF_INET`]).
    pub sin_family: u16,
    /// Port, network byte order.
    pub sin_port: u16,
    /// IPv4 address, network byte order.
    pub sin_addr: u32,
    /// Padding to `sizeof(struct sockaddr)`.
    pub sin_zero: [u8; 8],
}

impl sockaddr_in {
    /// An all-zero address, ready to be filled in by `recvmmsg`.
    pub fn zeroed() -> sockaddr_in {
        sockaddr_in {
            sin_family: 0,
            sin_port: 0,
            sin_addr: 0,
            sin_zero: [0; 8],
        }
    }

    /// Build a kernel-ready address from host-order parts.
    pub fn from_parts(addr: std::net::Ipv4Addr, port: u16) -> sockaddr_in {
        sockaddr_in {
            sin_family: AF_INET,
            sin_port: port.to_be(),
            sin_addr: u32::from(addr).to_be(),
            sin_zero: [0; 8],
        }
    }

    /// Recover the host-order socket address, if this is an IPv4 one.
    pub fn to_addr(self) -> Option<std::net::SocketAddr> {
        if self.sin_family != AF_INET {
            return None;
        }
        Some(std::net::SocketAddr::new(
            std::net::IpAddr::V4(std::net::Ipv4Addr::from(u32::from_be(self.sin_addr))),
            u16::from_be(self.sin_port),
        ))
    }
}

/// One message header (`struct msghdr`), x86-64 Linux layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct msghdr {
    /// Peer address buffer (in: for `sendmmsg`; out: for `recvmmsg`).
    pub msg_name: *mut c_void,
    /// Size of the buffer `msg_name` points at.
    pub msg_namelen: u32,
    /// Scatter/gather array.
    pub msg_iov: *mut iovec,
    /// Number of `iovec` entries.
    pub msg_iovlen: usize,
    /// Ancillary data (unused here: null).
    pub msg_control: *mut c_void,
    /// Ancillary data length.
    pub msg_controllen: usize,
    /// Flags on received messages (e.g. `MSG_TRUNC`).
    pub msg_flags: c_int,
}

/// One entry of a `sendmmsg`/`recvmmsg` vector (`struct mmsghdr`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct mmsghdr {
    /// The message itself.
    pub msg_hdr: msghdr,
    /// Bytes transferred for this entry (filled in by the kernel).
    pub msg_len: c_uint,
}

/// Kernel timespec for the `recvmmsg` timeout parameter.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: i64,
    /// Nanoseconds.
    pub tv_nsec: i64,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
extern "C" {
    /// Send up to `vlen` datagrams in one syscall. Returns the number
    /// sent (≥1) or -1 with `errno` if none could be sent.
    pub fn sendmmsg(sockfd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;

    /// Receive up to `vlen` datagrams in one syscall. Returns the number
    /// received (≥1) or -1 with `errno`.
    pub fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut timespec,
    ) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockaddr_roundtrip() {
        let ip: std::net::Ipv4Addr = "192.0.2.7".parse().unwrap();
        let sa = sockaddr_in::from_parts(ip, 5353);
        assert_eq!(sa.sin_family, AF_INET);
        let back = sa.to_addr().unwrap();
        assert_eq!(back, "192.0.2.7:5353".parse().unwrap());
        assert_eq!(sockaddr_in::zeroed().to_addr(), None);
    }

    #[test]
    fn abi_layout_matches_linux() {
        // The kernel reads these layouts directly; a size drift would
        // corrupt the batch. (x86-64 Linux values.)
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<iovec>(), 16);
        #[cfg(target_pointer_width = "64")]
        {
            assert_eq!(std::mem::size_of::<msghdr>(), 56);
            assert_eq!(std::mem::size_of::<mmsghdr>(), 64);
        }
    }
}
