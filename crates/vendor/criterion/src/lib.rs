//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! Supports the API surface the workspace's benches use — `bench_function`,
//! `benchmark_group`/`sample_size`/`finish`, `iter`, `iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple fixed-budget timing loop instead of criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, not used for sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    /// Measurement iterations per benchmark (overridable per group).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing loop runner passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup, then measure.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` with a per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
