//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `parking_lot` it uses: `Mutex` and `RwLock` with
//! non-poisoning guards. Implemented over `std::sync`, recovering the
//! inner value on poison (parking_lot has no poisoning).

use std::sync;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
