//! Minimal in-tree stand-in for the `serde` crate.
//!
//! Provides the trait shapes the workspace's hand-written impls compile
//! against (`Serialize`/`Serializer` with `serialize_str`, string-based
//! `Deserialize`/`Deserializer`, `de::Error::custom`) plus re-exports of
//! the no-op derive macros. JSON output in this workspace goes through
//! explicit `to_json()` methods, not through these traits.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can serialize themselves.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format serializer (string-focused subset).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serialize a string value.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serialize a boolean value.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;

    /// Serialize an unsigned integer value.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
}

/// Types that can deserialize themselves.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format deserializer (string-focused subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Pull one string value out of the input.
    fn deserialize_string_value(self) -> Result<String, Self::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string_value()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for &str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

/// Serialization-side error support.
pub mod ser {
    /// Errors a serializer can produce.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from any message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support.
pub mod de {
    /// Errors a deserializer can produce.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from any message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}
