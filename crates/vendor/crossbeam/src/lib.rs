//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer channels the workspace uses
//! (`channel::bounded` / `channel::unbounded`), implemented with a
//! `Mutex<VecDeque>` plus condition variables. Semantics follow crossbeam:
//! cloneable senders *and* receivers, `recv` errors once the queue is empty
//! and every sender is gone, `send` errors once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The receivers disconnected; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and all senders disconnected.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// A channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// A channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.0.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.not_empty.wait(state).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator yielded by [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = bounded::<u32>(2);
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn workers_share_one_receiver() {
            let (tx, rx) = bounded::<u64>(4);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut sum = 0;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            for i in 1..=100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
