//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The workspace only needs a deterministic, seedable small RNG with
//! `gen_range` over primitive ranges and `gen_bool`. `SmallRng` is
//! xoshiro256** seeded through splitmix64, the same construction the real
//! `rand` crate uses for its 64-bit `SmallRng` — streams differ from the
//! real crate, but all consumers only rely on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — fast, small, deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let i = rng.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
