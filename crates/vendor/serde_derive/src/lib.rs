//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes through derived impls — all JSON
//! output flows through hand-written `to_json()` methods — so the derive
//! macros only need to *accept* the `#[derive(Serialize, Deserialize)]`
//! and `#[serde(...)]` syntax the sources use. They emit no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and its `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and its `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
