//! Minimal in-tree stand-in for the `serde_json` crate.
//!
//! Implements the subset the workspace uses: the [`Value`] tree, an
//! insertion-ordered [`Map`], the recursive [`json!`] constructor macro,
//! compact (`Display`) and pretty rendering, indexing, and the comparison
//! operators tests rely on. No parser — this workspace only *produces*
//! JSON.

mod macros;
mod map;
mod parse;
mod value;

pub use map::Map;
pub use value::{write_escaped, Number, Value};

/// Serialization error (the rendering paths here are infallible, but the
/// real crate's signatures return `Result`, so callers unwrap).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Types that can be captured into a [`Value`] by reference — what the
/// [`json!`] macro uses for interpolated expressions (so interpolating a
/// field never moves it, matching real serde_json's `&`-based capture).
pub trait ToJsonValue {
    /// Build the JSON representation.
    fn to_json_value(&self) -> Value;
}

/// Convert any supported type into a [`Value`].
pub fn to_value<T: ToJsonValue + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    parse::parse(input)
}

/// Render a value as a compact JSON string.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Render a value as an indented JSON string.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value::write_pretty(value, 0, &mut out);
    Ok(out)
}
