//! The `json!` constructor macro — a tt-muncher in the style of the real
//! serde_json implementation, trimmed to the forms this workspace uses.

/// Build a [`crate::Value`] from JSON-like syntax.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //-----------------------------------------------------------------
    // Array munching: accumulate element expressions inside [..].
    //-----------------------------------------------------------------
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //-----------------------------------------------------------------
    // Object munching: accumulate key tokens, then the value.
    //-----------------------------------------------------------------
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one more token onto the key accumulator.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($copy));
    };

    //-----------------------------------------------------------------
    // Entry points.
    //-----------------------------------------------------------------
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(7), 7u64);
        assert_eq!(json!("x"), "x");
    }

    #[test]
    fn nested_object_and_arrays() {
        let preference = 10u16;
        let v = json!({
            "name": "example.com",
            "answers": [{"answer": "192.0.2.1", "type": "A"}, {"answer": "192.0.2.2", "type": "A"}],
            "mx": {"preference": preference, "exchange": format!("mx.{}", "example.com")},
            "flags": {"authoritative": true},
            "empty": [],
            "trailing": 1,
        });
        assert_eq!(v["name"], "example.com");
        assert_eq!(v["answers"][1]["answer"], "192.0.2.2");
        assert_eq!(v["mx"]["preference"], 10);
        assert_eq!(v["flags"]["authoritative"], true);
        assert!(v["empty"].as_array().unwrap().is_empty());
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn rendering_is_compact_and_ordered() {
        let v = json!({"b": 1, "a": [true, null, "s"]});
        assert_eq!(v.to_string(), r#"{"b":1,"a":[true,null,"s"]}"#);
    }

    #[test]
    fn float_rendering_keeps_decimal_point() {
        assert_eq!(json!(1.5).to_string(), "1.5");
        assert_eq!(json!(2.0).to_string(), "2.0");
        assert_eq!(json!(2u32).to_string(), "2");
    }

    #[test]
    fn string_escaping() {
        let v = json!({"k": "a\"b\\c\nd"});
        assert_eq!(v.to_string(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn index_assignment_inserts() {
        let mut v = json!({"a": 1});
        v["b"] = json!([2]);
        assert_eq!(v["b"][0], 2);
    }

    #[test]
    fn pretty_rendering() {
        let v = json!({"a": [1]});
        assert_eq!(
            crate::to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
