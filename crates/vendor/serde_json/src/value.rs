//! The JSON value tree, rendering, indexing, and comparisons.

use crate::map::Map;

/// A JSON number: integer or float, preserved as produced.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed (negative) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// Value as `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }

    /// Value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(v) => Some(v as f64),
            Number::I(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side is a big u64 or a float; fall through to f64.
            }
        }
        if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
            return a == b;
        }
        self.as_f64() == other.as_f64()
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
                    // Match serde_json: floats always carry a decimal point.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup: `&str` keys on objects, `usize` indices on arrays.
    pub fn get<I: JsonIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable member lookup.
    pub fn get_mut<I: JsonIndex>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// String content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` content if this is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` content if this is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` content if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Array content if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array content if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object content if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable object content if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Replace this value with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Polymorphic index type for [`Value::get`] and `value[...]`.
pub trait JsonIndex {
    /// Immutable lookup.
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
    /// Mutable lookup.
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value>;
    /// Lookup used by `value[...] = x`, inserting on objects.
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value;
}

impl JsonIndex for str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|o| o.get(self))
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        v.as_object_mut().and_then(|o| o.get_mut(self))
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        let obj = v
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object with string {self:?}"));
        if !obj.contains_key(self) {
            obj.insert(self.to_string(), Value::Null);
        }
        obj.get_mut(self).expect("just inserted")
    }
}

impl JsonIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        (**self).index_into(v)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        (**self).index_into_mut(v)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        (**self).index_or_insert(v)
    }
}

impl JsonIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        self.as_str().index_into_mut(v)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl JsonIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        v.as_array_mut()
            .and_then(|a| a.get_mut(*self))
            .unwrap_or_else(|| panic!("cannot index with out-of-bounds {self}"))
    }
}

impl<I: JsonIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: JsonIndex> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(v as f64))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::I(v as i64))
                } else {
                    Value::Number(Number::U(v as u64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<std::borrow::Cow<'_, str>> for Value {
    fn from(v: std::borrow::Cow<'_, str>) -> Value {
        Value::String(v.into_owned())
    }
}

impl From<char> for Value {
    fn from(v: char) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// Reference capture for the json! macro
// ---------------------------------------------------------------------------

use crate::ToJsonValue;

impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value {
                Value::from(self.clone())
            }
        }
    )*};
}
to_json_via_from!(bool, String, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJsonValue for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl ToJsonValue for std::borrow::Cow<'_, str> {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone().into_owned())
    }
}

impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

// ---------------------------------------------------------------------------
// Comparisons used by tests: value == literal (and the reverse)
// ---------------------------------------------------------------------------

macro_rules! partial_eq_via_from {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            // Comparisons go through a temporary Value so one rule covers
            // every literal type; these run in tests, not hot paths.
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(other.clone())
            }
        }
        impl PartialEq<Value> for $t {
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &Value) -> bool {
                Value::from(self.clone()) == *other
            }
        }
    )*};
}
partial_eq_via_from!(bool, String, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Write `s` as a JSON string literal (quoted, escaped) into `out` —
/// the exact escaping the compact `Display` rendering uses, exposed so
/// streaming serializers can compose object syntax around borrowed
/// fields without building an intermediate [`Value`].
pub fn write_escaped(s: &str, out: &mut impl std::fmt::Write) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0C}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(s, f),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

pub(crate) fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match value {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, v) in a.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(v, depth + 1, out);
                if i + 1 < a.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            let len = o.len();
            for (i, (k, v)) in o.iter().enumerate() {
                out.push_str(&pad);
                let _ = write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
                if i + 1 < len {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}
