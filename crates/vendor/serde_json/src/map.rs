//! An insertion-ordered string → value map.

use crate::value::Value;

/// JSON object representation. Key order is insertion order, which keeps
/// output deterministic within a process (the only property tests rely on).
#[derive(Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Create an empty map with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Map {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert `value` at `key`, returning the previous value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate mutably over `(key, value)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterate over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn split(entry: &(String, Value)) -> (&String, &Value) {
            (&entry.0, &entry.1)
        }
        self.entries.iter().map(split)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl std::fmt::Debug for Map<String, Value> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}
