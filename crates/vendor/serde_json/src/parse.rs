//! A small recursive-descent JSON parser (documents → [`Value`]).

use crate::{Error, Map, Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        use serde::de::Error as _;
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.error("bad \\u escape"))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.error("bad hex digit"))?;
                        }
                        // Surrogate pairs are not produced by this workspace;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.error("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.error("bad UTF-8")),
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("bad UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.error("bad number"))?;
            Ok(Value::Number(Number::F(f)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::U(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::I(i)))
        } else {
            let f: f64 = text.parse().map_err(|_| self.error("bad number"))?;
            Ok(Value::Number(Number::F(f)))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrips_compact_output() {
        let v = crate::json!({
            "name": "example.com",
            "n": -3,
            "f": 1.25,
            "nested": {"a": [1, true, null, "s\n"]},
        });
        let text = v.to_string();
        let parsed = crate::from_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(crate::from_str("{\"a\": }").is_err());
        assert!(crate::from_str("[1,]").is_err());
        assert!(crate::from_str("tru").is_err());
        assert!(crate::from_str("1 2").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = crate::from_str("{\"k\": \"héllo \\u0041\"}").unwrap();
        assert_eq!(v["k"], "héllo A");
    }
}
