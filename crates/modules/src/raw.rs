//! Raw DNS modules: "the raw DNS response from a server similar to dig,
//! but as structured JSON records" (§3.3) — one module per record type.

use zdns_core::{Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Question, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// A raw module for one record type.
pub struct RawModule {
    rtype: RecordType,
}

impl RawModule {
    /// Build the raw module for `rtype`.
    pub fn new(rtype: RecordType) -> RawModule {
        RawModule { rtype }
    }

    /// Every queryable record type gets a raw module (the paper's footnote
    /// lists 65; OPT/TSIG are transport artifacts, not queries).
    pub fn all() -> impl Iterator<Item = RawModule> {
        RecordType::all()
            .iter()
            .filter(|t| !matches!(t, RecordType::OPT | RecordType::TSIG | RecordType::NULL))
            .map(|&t| RawModule::new(t))
    }
}

struct RawMachine {
    inner: Inner,
    input: String,
    module: &'static str,
    sink: ModuleSink,
}

impl RawMachine {
    fn finish(&mut self, result: zdns_core::LookupResult) -> StepStatus {
        let json = result.to_json();
        emit(
            &self.sink,
            &self.input,
            self.module,
            result.status,
            json["data"].clone(),
            trace_json(&result),
        )
    }
}

impl SimClient for RawMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        match self.inner.start(now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match self.inner.on_event(event, now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for RawModule {
    fn name(&self) -> &'static str {
        self.rtype.as_str()
    }

    fn description(&self) -> &'static str {
        "raw DNS lookup returning the structured response"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        // The PTR module accepts plain IPs and reverses them.
        let reverse = self.rtype == RecordType::PTR;
        let Some(name) = input_to_name(input, reverse) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        Box::new(RawMachine {
            inner: Inner::lookup(resolver, Question::new(name, self.rtype)),
            input: input.to_string(),
            module: self.name(),
            sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_raw_modules_cover_footnote_types() {
        let names: Vec<&str> = RawModule::all().map(|m| m.name()).collect();
        for required in [
            "A", "AAAA", "CAA", "MX", "TXT", "PTR", "NS", "SOA", "NSEC3", "URI",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert!(names.len() >= 64, "only {} raw modules", names.len());
        assert!(!names.contains(&"OPT"));
    }
}
