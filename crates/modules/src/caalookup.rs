//! `CAALOOKUP` — CAA records with RFC 8659 CNAME-chain semantics and tag
//! validation, the instrument behind the §6 case study. The paper notes the
//! whole thing is "less than five lines" changed from the template module
//! plus ~15 lines of CAA-specific code; the analysis fields here (tag
//! classes, CNAME hop count) are what §6 aggregates.

use serde_json::json;
use zdns_core::{Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Question, RData, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// The CAA lookup module.
pub struct CaaLookupModule;

struct CaaMachine {
    inner: Inner,
    input: String,
    sink: ModuleSink,
}

impl CaaMachine {
    fn finish(&mut self, result: zdns_core::LookupResult) -> StepStatus {
        let mut records = Vec::new();
        let mut cname_hops = 0u32;
        let mut issue = Vec::new();
        let mut issuewild = Vec::new();
        let mut has_iodef = false;
        let mut invalid_tags = Vec::new();
        for rec in &result.answers {
            match &rec.rdata {
                RData::Cname(_) => cname_hops += 1,
                RData::Caa(caa) => {
                    let tag = caa.tag_str();
                    let value = caa.value_str();
                    match tag.as_str() {
                        "issue" => issue.push(value.clone()),
                        "issuewild" => issuewild.push(value.clone()),
                        "iodef" => has_iodef = true,
                        _ if !caa.tag_is_standard() => invalid_tags.push(tag.clone()),
                        _ => {}
                    }
                    records.push(json!({
                        "flag": caa.flags,
                        "tag": tag,
                        "value": value,
                        "critical": caa.critical(),
                    }));
                }
                _ => {}
            }
        }
        let data = json!({
            "records": records,
            "issue": issue,
            "issuewild": issuewild,
            "has_iodef": has_iodef,
            "invalid_tags": invalid_tags,
            "via_cname": cname_hops > 0,
            "cname_hops": cname_hops,
        });
        emit(
            &self.sink,
            &self.input,
            "CAALOOKUP",
            result.status,
            data,
            trace_json(&result),
        )
    }
}

impl SimClient for CaaMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        match self.inner.start(now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match self.inner.on_event(event, now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for CaaLookupModule {
    fn name(&self) -> &'static str {
        "CAALOOKUP"
    }

    fn description(&self) -> &'static str {
        "CAA records with CNAME chasing (RFC 8659) and tag validation"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Some(name) = input_to_name(input, false) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        Box::new(CaaMachine {
            inner: Inner::lookup(resolver, Question::new(name, RecordType::CAA)),
            input: input.to_string(),
            sink,
        })
    }
}
