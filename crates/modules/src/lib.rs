//! # zdns-modules
//!
//! ZDNS's composable module layer (§3.2–3.3): raw modules for every record
//! type, friendlier lookup modules (`alookup`, `mxlookup`, `nslookup`,
//! `caalookup`), TXT-policy modules (SPF, DMARC), misc modules
//! (`version.bind`), and the §5 `--all-nameservers` extension. Modules are
//! state machines composed from `zdns-core` lookups, so they run unchanged
//! under the simulator and over real sockets.

#![warn(missing_docs)]

pub mod all_nameservers;
pub mod alookup;
pub mod api;
pub mod caalookup;
pub mod misc;
pub mod mxlookup;
pub mod raw;
pub mod registry;
pub mod txtfilter;

pub use all_nameservers::AllNameserversModule;
pub use alookup::ALookupModule;
pub use api::{input_to_name, LookupModule, ModuleOutput, ModuleSink};
pub use caalookup::CaaLookupModule;
pub use misc::{BindVersionModule, NsLookupModule, ProbeModule};
pub use mxlookup::MxLookupModule;
pub use raw::RawModule;
pub use registry::ModuleRegistry;
