//! `mxlookup` — MX records plus the A records of each exchange (§3.3:
//! "mxlookup will additionally do an A lookup for the IP addresses that
//! correspond with an exchange record").

use serde_json::json;
use zdns_core::{LookupResult, Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Name, Question, RData, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// The `mxlookup` module.
pub struct MxLookupModule {
    /// Cap on how many exchanges get address lookups.
    pub max_exchanges: usize,
}

impl Default for MxLookupModule {
    fn default() -> Self {
        MxLookupModule { max_exchanges: 8 }
    }
}

struct Exchange {
    name: Name,
    preference: u16,
    addresses: Vec<String>,
}

struct MxMachine {
    input: String,
    sink: ModuleSink,
    resolver: Resolver,
    phase: Phase,
    exchanges: Vec<Exchange>,
    next_exchange: usize,
    trace: Vec<serde_json::Value>,
    status: Status,
    max_exchanges: usize,
}

enum Phase {
    Mx(Inner),
    ExchangeA(Inner),
}

impl MxMachine {
    fn handle_done(
        &mut self,
        result: LookupResult,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        self.trace.extend(trace_json(&result));
        match &self.phase {
            Phase::Mx(_) => {
                self.status = result.status;
                if !result.status.is_success() {
                    return self.finish();
                }
                for rec in &result.answers {
                    if let RData::Mx(mx) = &rec.rdata {
                        self.exchanges.push(Exchange {
                            name: mx.exchange.clone(),
                            preference: mx.preference,
                            addresses: Vec::new(),
                        });
                    }
                }
                self.exchanges.sort_by_key(|e| e.preference);
                self.exchanges.truncate(self.max_exchanges);
                // Harvest any A records already in the additional section
                // (§3.3 motivates mxlookup precisely because these are
                // often absent).
                for rec in &result.additionals {
                    if let RData::A(a) = &rec.rdata {
                        if let Some(e) = self.exchanges.iter_mut().find(|e| e.name == rec.name) {
                            e.addresses.push(a.to_string());
                        }
                    }
                }
                self.launch_next(now, out)
            }
            Phase::ExchangeA(_) => {
                let idx = self.next_exchange - 1;
                for rec in &result.answers {
                    if let RData::A(a) = &rec.rdata {
                        self.exchanges[idx].addresses.push(a.to_string());
                    }
                }
                self.launch_next(now, out)
            }
        }
    }

    fn launch_next(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        // Find the next exchange that still needs addresses.
        while self.next_exchange < self.exchanges.len() {
            let idx = self.next_exchange;
            self.next_exchange += 1;
            if !self.exchanges[idx].addresses.is_empty() {
                continue;
            }
            let q = Question::new(self.exchanges[idx].name.clone(), RecordType::A);
            let mut inner = Inner::lookup(&self.resolver, q);
            match inner.start(now, out) {
                Some(result) => {
                    self.phase = Phase::ExchangeA(inner);
                    return self.handle_done(result, now, out);
                }
                None => {
                    self.phase = Phase::ExchangeA(inner);
                    return StepStatus::Running;
                }
            }
        }
        self.finish()
    }

    fn finish(&mut self) -> StepStatus {
        let exchanges: Vec<_> = self
            .exchanges
            .iter()
            .map(|e| {
                json!({
                    "name": format!("{}.", e.name),
                    "preference": e.preference,
                    "ipv4_addresses": e.addresses,
                })
            })
            .collect();
        emit(
            &self.sink,
            &self.input,
            "MXLOOKUP",
            self.status,
            json!({ "exchanges": exchanges }),
            std::mem::take(&mut self.trace),
        )
    }
}

impl SimClient for MxMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        let done = match &mut self.phase {
            Phase::Mx(inner) | Phase::ExchangeA(inner) => inner.start(now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let done = match &mut self.phase {
            Phase::Mx(inner) | Phase::ExchangeA(inner) => inner.on_event(event, now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for MxLookupModule {
    fn name(&self) -> &'static str {
        "MXLOOKUP"
    }

    fn description(&self) -> &'static str {
        "MX records plus address lookups for each exchange"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Some(name) = input_to_name(input, false) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        Box::new(MxMachine {
            input: input.to_string(),
            sink,
            resolver: resolver.clone(),
            phase: Phase::Mx(Inner::lookup(resolver, Question::new(name, RecordType::MX))),
            exchanges: Vec::new(),
            next_exchange: 0,
            trace: Vec::new(),
            status: Status::NoError,
            max_exchanges: self.max_exchanges,
        })
    }
}
