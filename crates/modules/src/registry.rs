//! The module registry — the Rust analog of ZDNS's global
//! `RegisterLookup` table that `init()` functions populate.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::all_nameservers::AllNameserversModule;
use crate::alookup::ALookupModule;
use crate::api::LookupModule;
use crate::caalookup::CaaLookupModule;
use crate::misc::{BindVersionModule, NsLookupModule, ProbeModule};
use crate::mxlookup::MxLookupModule;
use crate::raw::RawModule;
use crate::txtfilter;

/// Name → module table.
pub struct ModuleRegistry {
    modules: BTreeMap<String, Arc<dyn LookupModule>>,
}

impl ModuleRegistry {
    /// An empty registry.
    pub fn empty() -> ModuleRegistry {
        ModuleRegistry {
            modules: BTreeMap::new(),
        }
    }

    /// The standard registry: every raw record module plus the lookup and
    /// misc modules (§3.3).
    pub fn standard() -> ModuleRegistry {
        let mut r = ModuleRegistry::empty();
        for raw in RawModule::all() {
            r.register(Arc::new(raw));
        }
        r.register(Arc::new(ALookupModule::default()));
        r.register(Arc::new(MxLookupModule::default()));
        r.register(Arc::new(NsLookupModule::default()));
        r.register(Arc::new(CaaLookupModule));
        r.register(Arc::new(BindVersionModule));
        r.register(Arc::new(ProbeModule));
        r.register(Arc::new(AllNameserversModule::default()));
        r.register(Arc::new(txtfilter::spf()));
        r.register(Arc::new(txtfilter::dmarc()));
        r
    }

    /// Register a module under its own name (later registrations win, so
    /// downstream users can override built-ins).
    pub fn register(&mut self, module: Arc<dyn LookupModule>) {
        self.modules
            .insert(module.name().to_ascii_uppercase(), module);
    }

    /// Look up a module by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn LookupModule>> {
        self.modules.get(&name.to_ascii_uppercase()).cloned()
    }

    /// All registered module names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.modules.keys().map(String::as_str).collect()
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when no modules are registered.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        ModuleRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_everything() {
        let r = ModuleRegistry::standard();
        for name in [
            "A",
            "AAAA",
            "MX",
            "TXT",
            "PTR",
            "CAA",
            "NSEC",
            "SPF",
            "DMARC",
            "ALOOKUP",
            "MXLOOKUP",
            "NSLOOKUP",
            "CAALOOKUP",
            "BINDVERSION",
            "ALLNAMESERVERS",
        ] {
            assert!(r.get(name).is_some(), "missing {name}");
        }
        // 65-ish raw modules + 8 composite ones.
        assert!(r.len() >= 70, "{} modules", r.len());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = ModuleRegistry::standard();
        assert!(r.get("mxlookup").is_some());
        assert!(r.get("MxLookup").is_some());
        assert!(r.get("nonexistent").is_none());
    }

    #[test]
    fn registration_overrides() {
        let mut r = ModuleRegistry::standard();
        let before = r.len();
        // Re-registering under an existing name replaces, not duplicates.
        r.register(Arc::new(crate::raw::RawModule::new(
            zdns_wire::RecordType::A,
        )));
        assert_eq!(r.len(), before);
    }
}
