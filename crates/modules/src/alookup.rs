//! `alookup` — nslookup-style address resolution that follows CNAMEs and
//! returns plain address lists (§3.3 "Lookup modules").

use serde_json::json;
use zdns_core::{LookupResult, Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Question, RData, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// The `alookup` module: A (and optionally AAAA) with CNAME chasing.
pub struct ALookupModule {
    /// Also query AAAA.
    pub ipv6: bool,
    /// Query A (disable for AAAA-only scans).
    pub ipv4: bool,
}

impl Default for ALookupModule {
    fn default() -> Self {
        ALookupModule {
            ipv6: false,
            ipv4: true,
        }
    }
}

struct ALookupMachine {
    input: String,
    sink: ModuleSink,
    phase: Phase,
    want_aaaa: bool,
    resolver: Resolver,
    question_name: zdns_wire::Name,
    v4: Vec<String>,
    v6: Vec<String>,
    cnames: Vec<String>,
    trace: Vec<serde_json::Value>,
    status: Status,
}

enum Phase {
    A(Inner),
    Aaaa(Inner),
}

impl ALookupMachine {
    fn absorb(&mut self, result: &LookupResult) {
        for rec in &result.answers {
            match &rec.rdata {
                RData::A(a) => self.v4.push(a.to_string()),
                RData::Aaaa(a) => self.v6.push(a.to_string()),
                RData::Cname(c) => self.cnames.push(format!("{c}.")),
                _ => {}
            }
        }
        self.trace.extend(trace_json(result));
        // The worst status wins; a failed AAAA after a good A demotes.
        if !result.status.is_success() || self.status == Status::NoError {
            self.status = if self.status.is_success() || !result.status.is_success() {
                result.status
            } else {
                self.status
            };
        }
    }

    fn step(&mut self, result: LookupResult, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        self.absorb(&result);
        match self.phase {
            Phase::A(_) if self.want_aaaa => {
                let mut inner = Inner::lookup(
                    &self.resolver,
                    Question::new(self.question_name.clone(), RecordType::AAAA),
                );
                if let Some(r) = inner.start(now, out) {
                    self.phase = Phase::Aaaa(inner);
                    return self.step(r, now, out);
                }
                self.phase = Phase::Aaaa(inner);
                StepStatus::Running
            }
            _ => self.finish(),
        }
    }

    fn finish(&mut self) -> StepStatus {
        // Dedup while preserving order.
        self.v4.dedup();
        self.v6.dedup();
        self.cnames.dedup();
        let data = json!({
            "ipv4_addresses": self.v4,
            "ipv6_addresses": self.v6,
            "cnames": self.cnames,
        });
        emit(
            &self.sink,
            &self.input,
            "ALOOKUP",
            self.status,
            data,
            std::mem::take(&mut self.trace),
        )
    }
}

impl SimClient for ALookupMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        let done = match &mut self.phase {
            Phase::A(inner) | Phase::Aaaa(inner) => inner.start(now, out),
        };
        match done {
            Some(result) => self.step(result, now, out),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let done = match &mut self.phase {
            Phase::A(inner) | Phase::Aaaa(inner) => inner.on_event(event, now, out),
        };
        match done {
            Some(result) => self.step(result, now, out),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for ALookupModule {
    fn name(&self) -> &'static str {
        "ALOOKUP"
    }

    fn description(&self) -> &'static str {
        "follow CNAMEs and return IPv4/IPv6 addresses, like nslookup"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Some(name) = input_to_name(input, false) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        let first_type = if self.ipv4 {
            RecordType::A
        } else {
            RecordType::AAAA
        };
        let inner = Inner::lookup(resolver, Question::new(name.clone(), first_type));
        Box::new(ALookupMachine {
            input: input.to_string(),
            sink,
            want_aaaa: self.ipv6 && self.ipv4,
            phase: if self.ipv4 {
                Phase::A(inner)
            } else {
                Phase::Aaaa(inner)
            },
            resolver: resolver.clone(),
            question_name: name,
            v4: Vec::new(),
            v6: Vec::new(),
            cnames: Vec::new(),
            trace: Vec::new(),
            status: Status::NoError,
        })
    }
}
