//! The module interface — the Rust analog of ZDNS's Go `DoLookup` modules.
//!
//! A module turns one input line (a name, or an IP for PTR/misc modules)
//! into a lookup machine plus a JSON result shape. Modules get direct access
//! to the resolver library (§3.2: "ZDNS modules are given direct access to
//! the DNS library"), so most of them are a few lines: build a question,
//! run it, reshape the answer.

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::Value;
use zdns_core::{LookupResult, Resolver, ResultSink, Status};
use zdns_netsim::{ClientEvent, JobOutcome, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Name, Question};

/// One output line produced by a module.
#[derive(Debug, Clone)]
pub struct ModuleOutput {
    /// The input this output answers.
    pub name: String,
    /// Module that produced it.
    pub module: &'static str,
    /// Lookup status.
    pub status: Status,
    /// Module-shaped JSON data.
    pub data: Value,
    /// The exposed lookup chain of the primary lookup, already as JSON.
    pub trace: Vec<Value>,
}

impl ModuleOutput {
    /// Render the full output line.
    pub fn to_json(&self) -> Value {
        let mut v = serde_json::json!({
            "name": self.name,
            "class": "IN",
            "status": self.status.as_str(),
            "module": self.module,
            "data": self.data,
        });
        if !self.trace.is_empty() {
            v["trace"] = Value::Array(self.trace.clone());
        }
        v
    }
}

/// Callback collecting module outputs.
pub type ModuleSink = Arc<dyn Fn(ModuleOutput) + Send + Sync>;

/// A composable lookup module.
pub trait LookupModule: Send + Sync {
    /// Module name as used on the command line (`A`, `MXLOOKUP`, `SPF`...).
    fn name(&self) -> &'static str;
    /// One-line description for `--help`.
    fn description(&self) -> &'static str;
    /// Build the machine that performs this module's lookup of `input`.
    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient>;
    /// True when every destination this module queries comes from its
    /// *input lines* (e.g. `PROBE`'s `name@ip`, `BINDVERSION`'s bare
    /// IPs) rather than from the resolver's mode — such modules run
    /// `--real` without `--name-servers` and never touch the simulated
    /// root hints.
    fn input_addressed(&self) -> bool {
        false
    }
}

/// A sub-lookup inside a module machine: wraps an inner machine and captures
/// its [`LookupResult`] when it completes.
pub struct Inner {
    machine: Box<dyn SimClient>,
    slot: Arc<Mutex<Option<LookupResult>>>,
}

impl Inner {
    /// A normal (iterative or external, per config) lookup.
    pub fn lookup(resolver: &Resolver, question: Question) -> Inner {
        let slot: Arc<Mutex<Option<LookupResult>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let sink: ResultSink = Arc::new(move |r| *s2.lock() = Some(r));
        Inner {
            machine: resolver.machine(question, Some(sink)),
            slot,
        }
    }

    /// A delegation-preserving iterative lookup.
    pub fn delegation(resolver: &Resolver, question: Question) -> Inner {
        let slot: Arc<Mutex<Option<LookupResult>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let sink: ResultSink = Arc::new(move |r| *s2.lock() = Some(r));
        Inner {
            machine: resolver.delegation_machine(question, Some(sink)),
            slot,
        }
    }

    /// A direct probe of one server.
    pub fn direct(
        resolver: &Resolver,
        question: Question,
        server: std::net::Ipv4Addr,
        recursion_desired: bool,
    ) -> Inner {
        let slot: Arc<Mutex<Option<LookupResult>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let sink: ResultSink = Arc::new(move |r| *s2.lock() = Some(r));
        Inner {
            machine: resolver.direct_machine(question, server, recursion_desired, Some(sink)),
            slot,
        }
    }

    /// Start the inner machine; `Some(result)` if it finished immediately.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> Option<LookupResult> {
        match self.machine.start(now, out) {
            StepStatus::Done(_) => self.slot.lock().take(),
            StepStatus::Running => None,
        }
    }

    /// Feed an event; `Some(result)` once the inner lookup completes.
    pub fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> Option<LookupResult> {
        match self.machine.on_event(event, now, out) {
            StepStatus::Done(_) => self.slot.lock().take(),
            StepStatus::Running => None,
        }
    }
}

/// Shorthand for emitting a finished module output.
pub fn emit(
    sink: &ModuleSink,
    name: &str,
    module: &'static str,
    status: Status,
    data: Value,
    trace: Vec<Value>,
) -> StepStatus {
    sink(ModuleOutput {
        name: name.to_string(),
        module,
        status,
        data,
        trace,
    });
    StepStatus::Done(JobOutcome {
        success: status.is_success(),
        status: status.as_str(),
    })
}

/// A machine that fails instantly (bad input).
pub struct FailMachine {
    /// The offending input.
    pub input: String,
    /// Module name for the output line.
    pub module: &'static str,
    /// Failure status (usually `IllegalInput`).
    pub status: Status,
    /// Output sink.
    pub sink: ModuleSink,
}

impl SimClient for FailMachine {
    fn start(&mut self, _now: SimTime, _out: &mut Vec<OutQuery>) -> StepStatus {
        emit(
            &self.sink,
            &self.input,
            self.module,
            self.status,
            Value::Null,
            Vec::new(),
        )
    }

    fn on_event(&mut self, _e: ClientEvent, _now: SimTime, _o: &mut Vec<OutQuery>) -> StepStatus {
        StepStatus::Done(JobOutcome {
            success: false,
            status: self.status.as_str(),
        })
    }
}

/// Parse an input line into a DNS name, converting IPv4 addresses into
/// their reverse (`in-addr.arpa`) form the way the ZDNS PTR module does.
pub fn input_to_name(input: &str, reverse_ips: bool) -> Option<Name> {
    let trimmed = input.trim();
    if reverse_ips {
        if let Ok(ip) = trimmed.parse::<std::net::Ipv4Addr>() {
            return Some(Name::reverse_ipv4(ip));
        }
        if let Ok(ip) = trimmed.parse::<std::net::Ipv6Addr>() {
            return Some(Name::reverse_ipv6(ip));
        }
    }
    trimmed.parse().ok()
}

/// Collect the trace of a lookup result as JSON values.
pub fn trace_json(result: &LookupResult) -> Vec<Value> {
    result.trace.iter().map(|s| s.to_json()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_to_name_reverses_ips() {
        let n = input_to_name("192.0.2.1", true).unwrap();
        assert_eq!(n.to_string(), "1.2.0.192.in-addr.arpa");
        let n6 = input_to_name("2001:db8::1", true).unwrap();
        assert!(n6.to_string().ends_with("ip6.arpa"));
        // Without reversal, an IP-looking string parses as a name.
        let plain = input_to_name("192.0.2.1", false).unwrap();
        assert_eq!(plain.label_count(), 4);
        assert!(input_to_name("bad..name", false).is_none());
    }

    #[test]
    fn module_output_json_shape() {
        let out = ModuleOutput {
            name: "example.com".into(),
            module: "A",
            status: Status::NoError,
            data: serde_json::json!({"answers": []}),
            trace: Vec::new(),
        };
        let v = out.to_json();
        assert_eq!(v["status"], "NOERROR");
        assert_eq!(v["module"], "A");
        assert!(v.get("trace").is_none());
    }
}
