//! TXT-filtering modules: SPF and DMARC.
//!
//! These mirror the paper's Appendix B example module: query TXT, keep the
//! string matching a case-insensitive prefix (`v=spf1` / `v=DMARC1`), and
//! return it under a single key.

use serde_json::json;
use zdns_core::{Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Question, RData, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// A TXT-filter module description.
pub struct TxtFilterModule {
    /// Module name (`SPF`, `DMARC`).
    pub module: &'static str,
    /// Case-insensitive prefix the TXT string must start with.
    pub prefix: &'static str,
    /// JSON key for the matched string (`spf`, `dmarc`).
    pub key: &'static str,
    /// Optional label prepended to the queried name (`_dmarc` for DMARC).
    pub subdomain: Option<&'static str>,
}

/// The SPF module (paper Appendix B).
pub fn spf() -> TxtFilterModule {
    TxtFilterModule {
        module: "SPF",
        prefix: "v=spf1",
        key: "spf",
        subdomain: None,
    }
}

/// The DMARC module: `v=DMARC1` TXT at `_dmarc.<name>`.
pub fn dmarc() -> TxtFilterModule {
    TxtFilterModule {
        module: "DMARC",
        prefix: "v=dmarc1",
        key: "dmarc",
        subdomain: Some("_dmarc"),
    }
}

struct TxtFilterMachine {
    inner: Inner,
    input: String,
    module: &'static str,
    prefix: &'static str,
    key: &'static str,
    sink: ModuleSink,
}

impl TxtFilterMachine {
    fn finish(&mut self, result: zdns_core::LookupResult) -> StepStatus {
        // The Appendix B CheckTxtRecords logic: find the TXT record whose
        // joined string starts with the prefix, case-insensitively.
        let matched = result.answers.iter().find_map(|rec| match &rec.rdata {
            RData::Txt(t) => {
                let joined = t.joined();
                joined
                    .to_ascii_lowercase()
                    .starts_with(self.prefix)
                    .then_some(joined)
            }
            _ => None,
        });
        let data = match &matched {
            Some(s) => json!({ self.key: s }),
            None => json!({}),
        };
        // A resolvable name without the record is still NOERROR — the
        // measurement succeeded, the record is absent.
        emit(
            &self.sink,
            &self.input,
            self.module,
            result.status,
            data,
            trace_json(&result),
        )
    }
}

impl SimClient for TxtFilterMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        match self.inner.start(now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match self.inner.on_event(event, now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for TxtFilterModule {
    fn name(&self) -> &'static str {
        self.module
    }

    fn description(&self) -> &'static str {
        "TXT lookup filtered to a policy record by prefix"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let name = input_to_name(input, false).and_then(|n| match self.subdomain {
            Some(label) => n.child(label).ok(),
            None => Some(n),
        });
        let Some(name) = name else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.module,
                status: Status::IllegalInput,
                sink,
            });
        };
        Box::new(TxtFilterMachine {
            inner: Inner::lookup(resolver, Question::new(name, RecordType::TXT)),
            input: input.to_string(),
            module: self.module,
            prefix: self.prefix,
            key: self.key,
            sink,
        })
    }
}
