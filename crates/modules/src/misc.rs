//! Misc modules (§3.3): alternative ways of querying servers, such as
//! extracting resolver versions via `version.bind`.

use serde_json::json;
use zdns_core::{Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Question, RData, RecordClass, RecordType};

use crate::api::{emit, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// `BINDVERSION`: query `version.bind` TXT in the CHAOS class directly at
/// the server named by the input line (an IP address).
pub struct BindVersionModule;

struct BindVersionMachine {
    inner: Inner,
    input: String,
    sink: ModuleSink,
}

impl BindVersionMachine {
    fn finish(&mut self, result: zdns_core::LookupResult) -> StepStatus {
        let version = result.answers.iter().find_map(|rec| match &rec.rdata {
            RData::Txt(t) => Some(t.joined()),
            _ => None,
        });
        emit(
            &self.sink,
            &self.input,
            "BINDVERSION",
            result.status,
            json!({ "version": version }),
            trace_json(&result),
        )
    }
}

impl SimClient for BindVersionMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        match self.inner.start(now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match self.inner.on_event(event, now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for BindVersionModule {
    fn name(&self) -> &'static str {
        "BINDVERSION"
    }

    fn description(&self) -> &'static str {
        "query version.bind (CHAOS TXT) against a server"
    }

    fn input_addressed(&self) -> bool {
        true
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Ok(server) = input.trim().parse::<std::net::Ipv4Addr>() else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        let question = Question {
            name: "version.bind".parse().expect("static name"),
            qtype: RecordType::TXT,
            qclass: RecordClass::CH,
        };
        Box::new(BindVersionMachine {
            inner: Inner::direct(resolver, question, server, false),
            input: input.to_string(),
            sink,
        })
    }
}

/// `PROBE`: one direct query per input line, with the destination pinned
/// *by the input* — `name@ip` probes `ip` for `name`'s A record (RD=0),
/// `name@ip#TYPE` picks another record type. The building block for
/// per-server reachability sweeps, and what the scan-pipeline tests use
/// to give each lookup its own destination.
pub struct ProbeModule;

struct ProbeMachine {
    inner: Inner,
    input: String,
    server: std::net::Ipv4Addr,
    sink: ModuleSink,
}

impl ProbeMachine {
    fn finish(&mut self, result: zdns_core::LookupResult) -> StepStatus {
        let json = result.to_json();
        let mut data = json["data"].clone();
        if let Some(obj) = data.as_object_mut() {
            obj.insert("server".to_string(), json!(self.server.to_string()));
        }
        emit(
            &self.sink,
            &self.input,
            "PROBE",
            result.status,
            data,
            trace_json(&result),
        )
    }
}

impl SimClient for ProbeMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        match self.inner.start(now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match self.inner.on_event(event, now, out) {
            Some(result) => self.finish(result),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for ProbeModule {
    fn name(&self) -> &'static str {
        "PROBE"
    }

    fn description(&self) -> &'static str {
        "direct query of the server named by the input (name@ip[#TYPE])"
    }

    fn input_addressed(&self) -> bool {
        true
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let fail = |sink| {
            Box::new(FailMachine {
                input: input.to_string(),
                module: "PROBE",
                status: Status::IllegalInput,
                sink,
            }) as Box<dyn SimClient>
        };
        let Some((name_part, rest)) = input.trim().split_once('@') else {
            return fail(sink);
        };
        let (server_part, qtype) = match rest.split_once('#') {
            Some((server, rtype)) => match rtype.parse::<RecordType>() {
                Ok(t) => (server, t),
                Err(_) => return fail(sink),
            },
            None => (rest, RecordType::A),
        };
        let Ok(server) = server_part.trim().parse::<std::net::Ipv4Addr>() else {
            return fail(sink);
        };
        let Some(name) = crate::api::input_to_name(name_part, false) else {
            return fail(sink);
        };
        Box::new(ProbeMachine {
            inner: Inner::direct(resolver, Question::new(name, qtype), server, false),
            input: input.to_string(),
            server,
            sink,
        })
    }
}

/// `NSLOOKUP`: NS records plus the addresses of each nameserver.
pub struct NsLookupModule {
    /// Cap on nameservers resolved.
    pub max_servers: usize,
}

impl Default for NsLookupModule {
    fn default() -> Self {
        NsLookupModule { max_servers: 8 }
    }
}

struct NsMachine {
    input: String,
    sink: ModuleSink,
    resolver: Resolver,
    phase: NsPhase,
    servers: Vec<(zdns_wire::Name, Vec<String>)>,
    next: usize,
    trace: Vec<serde_json::Value>,
    status: Status,
    max_servers: usize,
}

enum NsPhase {
    Ns(Inner),
    Addr(Inner),
}

impl NsMachine {
    fn handle_done(
        &mut self,
        result: zdns_core::LookupResult,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        self.trace.extend(trace_json(&result));
        match &self.phase {
            NsPhase::Ns(_) => {
                self.status = result.status;
                if !result.status.is_success() {
                    return self.finish();
                }
                for rec in &result.answers {
                    if let RData::Ns(ns) = &rec.rdata {
                        self.servers.push((ns.clone(), Vec::new()));
                    }
                }
                self.servers.truncate(self.max_servers);
                for rec in &result.additionals {
                    if let RData::A(a) = &rec.rdata {
                        if let Some((_, addrs)) =
                            self.servers.iter_mut().find(|(n, _)| *n == rec.name)
                        {
                            addrs.push(a.to_string());
                        }
                    }
                }
                self.launch_next(now, out)
            }
            NsPhase::Addr(_) => {
                let idx = self.next - 1;
                for rec in &result.answers {
                    if let RData::A(a) = &rec.rdata {
                        self.servers[idx].1.push(a.to_string());
                    }
                }
                self.launch_next(now, out)
            }
        }
    }

    fn launch_next(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        while self.next < self.servers.len() {
            let idx = self.next;
            self.next += 1;
            if !self.servers[idx].1.is_empty() {
                continue;
            }
            let q = Question::new(self.servers[idx].0.clone(), RecordType::A);
            let mut inner = Inner::lookup(&self.resolver, q);
            match inner.start(now, out) {
                Some(result) => {
                    self.phase = NsPhase::Addr(inner);
                    return self.handle_done(result, now, out);
                }
                None => {
                    self.phase = NsPhase::Addr(inner);
                    return StepStatus::Running;
                }
            }
        }
        self.finish()
    }

    fn finish(&mut self) -> StepStatus {
        let servers: Vec<_> = self
            .servers
            .iter()
            .map(|(name, addrs)| {
                json!({
                    "name": format!("{name}."),
                    "ipv4_addresses": addrs,
                })
            })
            .collect();
        emit(
            &self.sink,
            &self.input,
            "NSLOOKUP",
            self.status,
            json!({ "servers": servers }),
            std::mem::take(&mut self.trace),
        )
    }
}

impl SimClient for NsMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        let done = match &mut self.phase {
            NsPhase::Ns(inner) | NsPhase::Addr(inner) => inner.start(now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let done = match &mut self.phase {
            NsPhase::Ns(inner) | NsPhase::Addr(inner) => inner.on_event(event, now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for NsLookupModule {
    fn name(&self) -> &'static str {
        "NSLOOKUP"
    }

    fn description(&self) -> &'static str {
        "NS records plus addresses for each nameserver"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Some(name) = crate::api::input_to_name(input, false) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        Box::new(NsMachine {
            input: input.to_string(),
            sink,
            resolver: resolver.clone(),
            phase: NsPhase::Ns(Inner::lookup(resolver, Question::new(name, RecordType::NS))),
            servers: Vec::new(),
            next: 0,
            trace: Vec::new(),
            status: Status::NoError,
            max_servers: self.max_servers,
        })
    }
}
