//! `--all-nameservers` — the §5 case-study extension: resolve a domain,
//! then query **every** authoritative nameserver for it and record each
//! server's answers and how many retries it needed. The paper implements
//! this in ~30 lines on top of the library; the building blocks here are
//! the delegation-preserving walk and the direct-probe machine.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use serde_json::json;
use zdns_core::{LookupResult, Resolver, Status};
use zdns_netsim::{ClientEvent, OutQuery, SimClient, SimTime, StepStatus};
use zdns_wire::{Name, Question, RData, RecordType};

use crate::api::{emit, input_to_name, trace_json, FailMachine, Inner, LookupModule, ModuleSink};

/// The all-nameservers module.
pub struct AllNameserversModule {
    /// Record type to probe each server with.
    pub qtype: RecordType,
}

impl Default for AllNameserversModule {
    fn default() -> Self {
        AllNameserversModule {
            qtype: RecordType::A,
        }
    }
}

struct NsProbe {
    ns: Name,
    addr: Option<Ipv4Addr>,
    status: Option<Status>,
    retries: u32,
    answers: BTreeSet<String>,
}

struct AllNsMachine {
    input: String,
    sink: ModuleSink,
    resolver: Resolver,
    question: Question,
    phase: Phase,
    probes: Vec<NsProbe>,
    current: usize,
    trace: Vec<serde_json::Value>,
    walk_status: Status,
}

enum Phase {
    Walk(Inner),
    NsAddr(Inner),
    Probe(Inner),
}

impl AllNsMachine {
    fn handle_done(
        &mut self,
        result: LookupResult,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match &self.phase {
            Phase::Walk(_) => {
                self.trace.extend(trace_json(&result));
                self.walk_status = result.status;
                match &result.delegation {
                    Some(delegation) if !delegation.nameservers.is_empty() => {
                        self.probes = delegation
                            .nameservers
                            .iter()
                            .map(|(ns, addr)| NsProbe {
                                ns: ns.clone(),
                                addr: *addr,
                                status: None,
                                retries: 0,
                                answers: BTreeSet::new(),
                            })
                            .collect();
                        self.launch_next(now, out)
                    }
                    _ => self.finish(),
                }
            }
            Phase::NsAddr(_) => {
                let probe = &mut self.probes[self.current];
                probe.addr = result.answers.iter().find_map(|r| match &r.rdata {
                    RData::A(a) => Some(*a),
                    _ => None,
                });
                if probe.addr.is_none() {
                    probe.status = Some(Status::ServFail);
                    self.current += 1;
                }
                self.launch_next(now, out)
            }
            Phase::Probe(_) => {
                let probe = &mut self.probes[self.current];
                probe.status = Some(result.status);
                probe.retries = result.retries_used;
                for rec in &result.answers {
                    if let RData::A(a) = &rec.rdata {
                        probe.answers.insert(a.to_string());
                    }
                }
                self.current += 1;
                self.launch_next(now, out)
            }
        }
    }

    fn launch_next(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        while self.current < self.probes.len() {
            let probe = &self.probes[self.current];
            if probe.status.is_some() {
                self.current += 1;
                continue;
            }
            let mut inner = match probe.addr {
                Some(addr) => {
                    let inner = Inner::direct(&self.resolver, self.question.clone(), addr, false);
                    self.phase = Phase::Probe(inner);
                    match &mut self.phase {
                        Phase::Probe(i) => match i.start(now, out) {
                            Some(result) => return self.handle_done(result, now, out),
                            None => return StepStatus::Running,
                        },
                        _ => unreachable!(),
                    }
                }
                None => Inner::lookup(
                    &self.resolver,
                    Question::new(probe.ns.clone(), RecordType::A),
                ),
            };
            match inner.start(now, out) {
                Some(result) => {
                    self.phase = Phase::NsAddr(inner);
                    return self.handle_done(result, now, out);
                }
                None => {
                    self.phase = Phase::NsAddr(inner);
                    return StepStatus::Running;
                }
            }
        }
        self.finish()
    }

    fn finish(&mut self) -> StepStatus {
        // §5's two findings come straight from this shape: per-NS retries
        // (availability) and per-NS answer sets (response consistency).
        let answered: Vec<&NsProbe> = self
            .probes
            .iter()
            .filter(|p| matches!(p.status, Some(s) if s.is_success()) && !p.answers.is_empty())
            .collect();
        let consistent = answered.windows(2).all(|w| w[0].answers == w[1].answers);
        let max_retries = self.probes.iter().map(|p| p.retries).max().unwrap_or(0);
        let nameservers: Vec<_> = self
            .probes
            .iter()
            .map(|p| {
                json!({
                    "nameserver": format!("{}.", p.ns),
                    "ip": p.addr.map(|a| a.to_string()),
                    "status": p.status.unwrap_or(Status::Error).as_str(),
                    "retries": p.retries,
                    "answers": p.answers.iter().collect::<Vec<_>>(),
                })
            })
            .collect();
        let status = if self.probes.is_empty() {
            self.walk_status
        } else if answered.is_empty() {
            Status::ServFail
        } else {
            Status::NoError
        };
        emit(
            &self.sink,
            &self.input,
            "ALLNAMESERVERS",
            status,
            json!({
                "nameservers": nameservers,
                "consistent": consistent,
                "max_retries": max_retries,
            }),
            std::mem::take(&mut self.trace),
        )
    }
}

impl SimClient for AllNsMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        let done = match &mut self.phase {
            Phase::Walk(i) | Phase::NsAddr(i) | Phase::Probe(i) => i.start(now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }

    fn on_event(
        &mut self,
        event: ClientEvent,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let done = match &mut self.phase {
            Phase::Walk(i) | Phase::NsAddr(i) | Phase::Probe(i) => i.on_event(event, now, out),
        };
        match done {
            Some(result) => self.handle_done(result, now, out),
            None => StepStatus::Running,
        }
    }
}

impl LookupModule for AllNameserversModule {
    fn name(&self) -> &'static str {
        "ALLNAMESERVERS"
    }

    fn description(&self) -> &'static str {
        "query every authoritative nameserver and compare answers (§5)"
    }

    fn make_machine(
        &self,
        input: &str,
        resolver: &Resolver,
        sink: ModuleSink,
    ) -> Box<dyn SimClient> {
        let Some(name) = input_to_name(input, false) else {
            return Box::new(FailMachine {
                input: input.to_string(),
                module: self.name(),
                status: Status::IllegalInput,
                sink,
            });
        };
        let question = Question::new(name, self.qtype);
        Box::new(AllNsMachine {
            input: input.to_string(),
            sink,
            resolver: resolver.clone(),
            question: question.clone(),
            phase: Phase::Walk(Inner::delegation(resolver, question)),
            probes: Vec::new(),
            current: 0,
            trace: Vec::new(),
            walk_status: Status::Error,
        })
    }
}
