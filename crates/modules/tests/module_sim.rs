//! Module behaviour end-to-end through the simulator: composed lookups
//! (mxlookup, alookup, all-nameservers), TXT filters, and CAA analysis.

use std::sync::Arc;

use parking_lot::Mutex;
use zdns_core::{Resolver, ResolverConfig};
use zdns_modules::{LookupModule, ModuleOutput, ModuleRegistry, ModuleSink};
use zdns_netsim::{Engine, EngineConfig};
use zdns_wire::Name;
use zdns_zones::{synth::WwwKind, SynthConfig, SyntheticUniverse, Universe};

fn universe() -> Arc<SyntheticUniverse> {
    Arc::new(SyntheticUniverse::new(SynthConfig::default()))
}

fn resolver(u: &SyntheticUniverse) -> Resolver {
    Resolver::new(ResolverConfig::iterative(u.root_hints()))
}

fn run_module(
    u: Arc<SyntheticUniverse>,
    module: &dyn LookupModule,
    resolver: &Resolver,
    inputs: Vec<String>,
) -> Vec<ModuleOutput> {
    let outputs: Arc<Mutex<Vec<ModuleOutput>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_store = Arc::clone(&outputs);
    let sink: ModuleSink = Arc::new(move |o| sink_store.lock().push(o));
    let mut engine = Engine::new(
        EngineConfig {
            threads: 4,
            wire_fidelity: true,
            ..EngineConfig::default()
        },
        u,
    );
    let mut iter = inputs.into_iter();
    engine.run(move || {
        let input = iter.next()?;
        Some(module.make_machine(&input, resolver, sink.clone()))
    });
    let collected = std::mem::take(&mut *outputs.lock());
    collected
}

fn find_domains(
    u: &SyntheticUniverse,
    tld: &str,
    pred: impl Fn(&zdns_zones::DomainProfile) -> bool,
    n: usize,
    budget: usize,
) -> Vec<String> {
    (0..budget)
        .map(|i| format!("mod{i}.{tld}"))
        .filter(|name| {
            let parsed: Name = name.parse().unwrap();
            u.domain_exists(&parsed) && pred(&u.domain_profile(&parsed))
        })
        .take(n)
        .collect()
}

#[test]
fn mxlookup_resolves_exchange_addresses() {
    let u = universe();
    let r = resolver(&u);
    let with_mx = find_domains(&u, "com", |p| p.has_mx, 5, 100_000);
    assert!(!with_mx.is_empty());
    let outputs = run_module(
        Arc::clone(&u),
        &zdns_modules::MxLookupModule::default(),
        &r,
        with_mx,
    );
    let ok = outputs
        .iter()
        .find(|o| {
            o.status.is_success()
                && o.data["exchanges"]
                    .as_array()
                    .is_some_and(|a| !a.is_empty())
        })
        .expect("an MX success");
    let exchange = &ok.data["exchanges"][0];
    assert!(exchange["name"].as_str().unwrap().starts_with("mail."));
    assert!(
        !exchange["ipv4_addresses"].as_array().unwrap().is_empty(),
        "mxlookup must resolve exchange addresses: {exchange}"
    );
}

#[test]
fn alookup_reports_cnames_and_addresses() {
    let u = universe();
    let r = resolver(&u);
    let www_cname: Vec<String> =
        find_domains(&u, "net", |p| p.www == WwwKind::CnameToApex, 4, 100_000)
            .into_iter()
            .map(|d| format!("www.{d}"))
            .collect();
    assert!(!www_cname.is_empty());
    let outputs = run_module(
        Arc::clone(&u),
        &zdns_modules::ALookupModule::default(),
        &r,
        www_cname,
    );
    let ok = outputs
        .iter()
        .find(|o| o.status.is_success() && !o.data["cnames"].as_array().unwrap().is_empty())
        .expect("a CNAME-following alookup success");
    assert!(!ok.data["ipv4_addresses"].as_array().unwrap().is_empty());
}

#[test]
fn spf_module_filters_txt() {
    let u = universe();
    let r = resolver(&u);
    let with_spf = find_domains(&u, "com", |p| p.has_spf, 5, 100_000);
    let without_spf = find_domains(&u, "com", |p| p.has_txt && !p.has_spf, 5, 100_000);
    let spf = zdns_modules::txtfilter::spf();
    let outputs = run_module(Arc::clone(&u), &spf, &r, with_spf);
    let ok = outputs
        .iter()
        .find(|o| o.status.is_success() && o.data.get("spf").is_some())
        .expect("an SPF hit");
    assert!(ok.data["spf"].as_str().unwrap().starts_with("v=spf1"));
    // Domains with TXT but no SPF produce NOERROR with empty data.
    let outputs = run_module(Arc::clone(&u), &spf, &r, without_spf);
    let miss = outputs.iter().find(|o| o.status.is_success()).unwrap();
    assert!(miss.data.get("spf").is_none());
}

#[test]
fn caalookup_classifies_tags() {
    let u = universe();
    let r = resolver(&u);
    let with_caa = find_domains(
        &u,
        "pl",
        |p| !p.caa_records.is_empty() && !p.caa_via_cname,
        6,
        400_000,
    );
    assert!(!with_caa.is_empty());
    let outputs = run_module(Arc::clone(&u), &zdns_modules::CaaLookupModule, &r, with_caa);
    let ok = outputs
        .iter()
        .find(|o| o.status.is_success() && !o.data["records"].as_array().unwrap().is_empty())
        .expect("a CAA holder resolved");
    // §6: the issue tag dominates; Let's Encrypt is in nearly all records.
    let issue = ok.data["issue"].as_array().unwrap();
    assert!(!issue.is_empty(), "{:?}", ok.data);
    assert_eq!(ok.data["via_cname"], false);
}

#[test]
fn all_nameservers_probes_every_server() {
    let u = universe();
    let r = resolver(&u);
    let domains = find_domains(
        &u,
        "com",
        |p| p.lame_ns.is_none() && !p.glueless,
        4,
        100_000,
    );
    let outputs = run_module(
        Arc::clone(&u),
        &zdns_modules::AllNameserversModule::default(),
        &r,
        domains.clone(),
    );
    assert_eq!(outputs.len(), domains.len());
    let ok = outputs
        .iter()
        .find(|o| o.status.is_success())
        .expect("an all-NS success");
    let servers = ok.data["nameservers"].as_array().unwrap();
    let parsed: Name = ok.name.parse().unwrap();
    let expected = u.domain_profile(&parsed).ns_count as usize;
    assert_eq!(servers.len(), expected, "{}", ok.data);
    // Consistent providers serve identical answers (§5: >99.99%).
    if !u.domain_profile(&parsed).inconsistent {
        assert_eq!(ok.data["consistent"], true);
    }
}

#[test]
fn all_nameservers_detects_inconsistency() {
    let u = universe();
    let r = resolver(&u);
    // Inconsistent domains are ~1/10000; widen the net.
    let inconsistent = find_domains(
        &u,
        "com",
        |p| p.inconsistent && p.lame_ns.is_none(),
        2,
        2_000_000,
    );
    if inconsistent.is_empty() {
        return; // seed produced none in budget; other tests cover the path
    }
    let outputs = run_module(
        Arc::clone(&u),
        &zdns_modules::AllNameserversModule::default(),
        &r,
        inconsistent,
    );
    let flagged = outputs
        .iter()
        .any(|o| o.status.is_success() && o.data["consistent"] == false);
    assert!(flagged, "inconsistent domain not detected");
}

#[test]
fn registry_machines_run_via_names() {
    let u = universe();
    let r = resolver(&u);
    let registry = ModuleRegistry::standard();
    let existing = find_domains(&u, "com", |_| true, 1, 50_000);
    let module = registry.get("A").unwrap();
    let outputs = run_module(Arc::clone(&u), module.as_ref(), &r, existing);
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].module, "A");
}

#[test]
fn ptr_module_accepts_plain_ips() {
    let u = universe();
    let r = resolver(&u);
    let ip = (0..u32::MAX)
        .map(|i| std::net::Ipv4Addr::from(0x0800_0000u32.wrapping_add(i * 7919)))
        .find(|&ip| u.ptr_exists(ip))
        .unwrap();
    let registry = ModuleRegistry::standard();
    let module = registry.get("PTR").unwrap();
    let outputs = run_module(Arc::clone(&u), module.as_ref(), &r, vec![ip.to_string()]);
    assert_eq!(outputs.len(), 1);
    assert!(outputs[0].status.is_success(), "{:?}", outputs[0].status);
    let answers = outputs[0].data["answers"].as_array().unwrap();
    assert_eq!(answers[0]["type"], "PTR");
}

#[test]
fn illegal_input_fails_fast() {
    let u = universe();
    let r = resolver(&u);
    let registry = ModuleRegistry::standard();
    let module = registry.get("A").unwrap();
    let outputs = run_module(Arc::clone(&u), module.as_ref(), &r, vec!["..bad..".into()]);
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].status, zdns_core::Status::IllegalInput);
}
