//! An explicit, in-memory DNS zone with full authoritative lookup semantics:
//! answers, referrals with glue, CNAMEs, wildcards, empty non-terminals,
//! NXDOMAIN vs NODATA.
//!
//! Explicit zones back the real-socket test servers and every unit test;
//! the planet-scale namespace is procedural (see [`crate::synth`]) but
//! produces responses with exactly these semantics.

use std::collections::{BTreeMap, HashMap, HashSet};

use zdns_wire::rdata::Soa;
use zdns_wire::{Name, RData, Record, RecordType};

/// A zone: an apex with SOA/NS, a set of in-zone RRsets, and child zone
/// cuts (delegations).
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Record,
    /// RRsets keyed by owner name and type.
    rrsets: HashMap<Name, BTreeMap<u16, Vec<Record>>>,
    /// Every name that exists (including empty non-terminals).
    names: HashSet<Name>,
    /// Child zone cuts: cut name → NS records (and any glue under the cut).
    delegations: BTreeMap<Name, Vec<Record>>,
    /// Glue addresses for names below zone cuts.
    glue: HashMap<Name, Vec<Record>>,
    default_ttl: u32,
}

/// The outcome of an authoritative lookup within one zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Authoritative data (possibly preceded by an in-zone CNAME chain).
    Answer {
        /// Records for the answer section, CNAME chain included in order.
        records: Vec<Record>,
    },
    /// A CNAME whose target left the zone; the caller restarts resolution.
    Cname {
        /// The CNAME chain followed so far.
        chain: Vec<Record>,
        /// The out-of-zone target.
        target: Name,
    },
    /// The name is below a child zone cut: here are the NS records and glue.
    Referral {
        /// The delegated child zone apex.
        cut: Name,
        /// NS records for the authority section.
        ns: Vec<Record>,
        /// A/AAAA glue for the additional section.
        glue: Vec<Record>,
    },
    /// The name does not exist; SOA for negative caching.
    NxDomain {
        /// The zone SOA record.
        soa: Record,
    },
    /// The name exists but has no records of the requested type.
    NoData {
        /// The zone SOA record.
        soa: Record,
    },
    /// The zone is not authoritative for this name at all.
    NotInZone,
}

impl Zone {
    /// Create a zone with a synthesized SOA.
    pub fn new(origin: Name, primary_ns: Name, default_ttl: u32) -> Zone {
        let soa = Record::new(
            origin.clone(),
            default_ttl,
            RData::Soa(Soa {
                mname: primary_ns,
                rname: origin
                    .child("hostmaster")
                    .unwrap_or_else(|_| origin.clone()),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        );
        let mut zone = Zone {
            origin: origin.clone(),
            soa,
            rrsets: HashMap::new(),
            names: HashSet::new(),
            delegations: BTreeMap::new(),
            glue: HashMap::new(),
            default_ttl,
        };
        zone.names.insert(origin);
        zone
    }

    /// The zone apex.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The SOA record.
    pub fn soa(&self) -> &Record {
        &self.soa
    }

    /// Number of RRsets (for inventory/stats).
    pub fn rrset_count(&self) -> usize {
        self.rrsets.values().map(|m| m.len()).sum()
    }

    /// Add a record. Records outside the zone are rejected; records below an
    /// existing delegation become glue only.
    pub fn add(&mut self, record: Record) -> bool {
        if !record.name.is_subdomain_of(&self.origin) {
            return false;
        }
        // Register the name and all intermediate names (empty non-terminals
        // make the NODATA-vs-NXDOMAIN distinction possible).
        let mut n = record.name.clone();
        while n != self.origin {
            self.names.insert(n.clone());
            n = n.parent();
        }
        self.rrsets
            .entry(record.name.clone())
            .or_default()
            .entry(record.rtype.to_u16())
            .or_default()
            .push(record);
        true
    }

    /// Add a delegation: NS records at `cut` plus optional glue addresses.
    pub fn delegate(&mut self, cut: Name, ns_names: &[Name], glue: &[(Name, RData)]) {
        let ns_records: Vec<Record> = ns_names
            .iter()
            .map(|ns| Record::new(cut.clone(), self.default_ttl, RData::Ns(ns.clone())))
            .collect();
        let mut n = cut.clone();
        while n != self.origin {
            self.names.insert(n.clone());
            n = n.parent();
        }
        self.delegations.insert(cut, ns_records);
        for (name, rdata) in glue {
            self.glue.entry(name.clone()).or_default().push(Record::new(
                name.clone(),
                self.default_ttl,
                rdata.clone(),
            ));
        }
    }

    /// Find the closest enclosing delegation strictly below the apex that
    /// covers `qname` (i.e. is `qname` or an ancestor of it).
    fn covering_delegation(&self, qname: &Name) -> Option<(&Name, &Vec<Record>)> {
        // Walk ancestors from qname toward the origin; the first hit is the
        // deepest cut.
        let mut n = qname.clone();
        loop {
            if n == self.origin {
                return None;
            }
            if let Some(ns) = self.delegations.get(&n) {
                // A cut at the qname itself only matters for non-NS/DS
                // queries; for simplicity we treat NS-at-cut as a referral
                // too, which is what a parent-side server does.
                let key = self.delegations.get_key_value(&n).expect("present").0;
                return Some((key, ns));
            }
            if n.label_count() == 0 {
                return None;
            }
            n = n.parent();
        }
    }

    /// Authoritative lookup. `qtype` ANY returns every RRset at the name.
    pub fn lookup(&self, qname: &Name, qtype: RecordType) -> ZoneAnswer {
        if !qname.is_subdomain_of(&self.origin) {
            return ZoneAnswer::NotInZone;
        }
        // Referral wins over everything except data at the apex.
        if let Some((cut, ns)) = self.covering_delegation(qname) {
            let mut glue = Vec::new();
            for rec in ns {
                if let RData::Ns(ns_name) = &rec.rdata {
                    if let Some(g) = self.glue.get(ns_name) {
                        glue.extend(g.iter().cloned());
                    }
                }
            }
            return ZoneAnswer::Referral {
                cut: cut.clone(),
                ns: ns.clone(),
                glue,
            };
        }
        // Exact name match.
        if let Some(sets) = self.rrsets.get(qname) {
            if qtype == RecordType::ANY {
                let records: Vec<Record> = sets.values().flat_map(|v| v.iter().cloned()).collect();
                return ZoneAnswer::Answer { records };
            }
            if let Some(recs) = sets.get(&qtype.to_u16()) {
                return ZoneAnswer::Answer {
                    records: recs.clone(),
                };
            }
            // CNAME redirection (never for CNAME queries themselves).
            if qtype != RecordType::CNAME {
                if let Some(cnames) = sets.get(&RecordType::CNAME.to_u16()) {
                    return self.follow_cname(cnames.clone(), qtype);
                }
            }
            return ZoneAnswer::NoData {
                soa: self.soa.clone(),
            };
        }
        // Name exists only as an empty non-terminal → NODATA.
        if self.names.contains(qname) {
            return ZoneAnswer::NoData {
                soa: self.soa.clone(),
            };
        }
        // Wildcard synthesis: look for `*` at the closest encloser.
        if let Some(answer) = self.wildcard_lookup(qname, qtype) {
            return answer;
        }
        ZoneAnswer::NxDomain {
            soa: self.soa.clone(),
        }
    }

    fn follow_cname(&self, mut chain: Vec<Record>, qtype: RecordType) -> ZoneAnswer {
        // Follow in-zone CNAME links, guarding against loops.
        let mut seen: HashSet<Name> = chain.iter().map(|r| r.name.clone()).collect();
        loop {
            let target = match &chain.last().expect("non-empty chain").rdata {
                RData::Cname(t) => t.clone(),
                _ => unreachable!("chain holds CNAMEs"),
            };
            if seen.contains(&target) {
                // CNAME loop inside the zone: answer with the chain so far;
                // the resolver will detect the loop.
                return ZoneAnswer::Answer { records: chain };
            }
            seen.insert(target.clone());
            if !target.is_subdomain_of(&self.origin) {
                return ZoneAnswer::Cname { chain, target };
            }
            match self.rrsets.get(&target) {
                Some(sets) => {
                    if let Some(recs) = sets.get(&qtype.to_u16()) {
                        chain.extend(recs.iter().cloned());
                        return ZoneAnswer::Answer { records: chain };
                    }
                    if let Some(cn) = sets.get(&RecordType::CNAME.to_u16()) {
                        chain.extend(cn.iter().cloned());
                        continue;
                    }
                    return ZoneAnswer::NoData {
                        soa: self.soa.clone(),
                    };
                }
                None => {
                    // Target in zone but absent: empty answer with chain,
                    // mirroring authoritative behaviour (NOERROR + chain).
                    return ZoneAnswer::Answer { records: chain };
                }
            }
        }
    }

    fn wildcard_lookup(&self, qname: &Name, qtype: RecordType) -> Option<ZoneAnswer> {
        // Find the closest encloser: deepest existing ancestor of qname.
        let mut encloser = qname.parent();
        loop {
            if self.names.contains(&encloser) || encloser == self.origin {
                break;
            }
            if encloser.label_count() == 0 {
                return None;
            }
            encloser = encloser.parent();
        }
        let wildcard = encloser.child("*").ok()?;
        let sets = self.rrsets.get(&wildcard)?;
        let recs = sets.get(&qtype.to_u16())?;
        // Synthesize records at the query name.
        let records = recs
            .iter()
            .map(|r| Record {
                name: qname.clone(),
                ..r.clone()
            })
            .collect();
        Some(ZoneAnswer::Answer { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn example_zone() -> Zone {
        let origin: Name = "example.com".parse().unwrap();
        let mut z = Zone::new(origin.clone(), "ns1.example.com".parse().unwrap(), 3600);
        z.add(Record::new(
            origin.clone(),
            3600,
            RData::Ns("ns1.example.com".parse().unwrap()),
        ));
        z.add(Record::new(
            origin.clone(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            "www.example.com".parse().unwrap(),
            300,
            RData::Cname(origin.clone()),
        ));
        z.add(Record::new(
            "a.b.example.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 2)),
        ));
        z.add(Record::new(
            "*.wild.example.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 3)),
        ));
        z.add(Record::new(
            "ext.example.com".parse().unwrap(),
            300,
            RData::Cname("target.example.net".parse().unwrap()),
        ));
        z.delegate(
            "sub.example.com".parse().unwrap(),
            &["ns1.sub.example.com".parse().unwrap()],
            &[(
                "ns1.sub.example.com".parse().unwrap(),
                RData::A(Ipv4Addr::new(198, 51, 100, 1)),
            )],
        );
        z
    }

    #[test]
    fn exact_answer() {
        let z = example_zone();
        match z.lookup(&"example.com".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Answer { records } => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let z = example_zone();
        assert!(matches!(
            z.lookup(&"missing.example.com".parse().unwrap(), RecordType::A),
            ZoneAnswer::NxDomain { .. }
        ));
        // example.com exists but has no MX.
        assert!(matches!(
            z.lookup(&"example.com".parse().unwrap(), RecordType::MX),
            ZoneAnswer::NoData { .. }
        ));
        // b.example.com exists only as an empty non-terminal.
        assert!(matches!(
            z.lookup(&"b.example.com".parse().unwrap(), RecordType::A),
            ZoneAnswer::NoData { .. }
        ));
    }

    #[test]
    fn in_zone_cname_followed() {
        let z = example_zone();
        match z.lookup(&"www.example.com".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Answer { records } => {
                assert_eq!(records.len(), 2);
                assert!(matches!(records[0].rdata, RData::Cname(_)));
                assert!(matches!(records[1].rdata, RData::A(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let z = example_zone();
        match z.lookup(&"www.example.com".parse().unwrap(), RecordType::CNAME) {
            ZoneAnswer::Answer { records } => {
                assert_eq!(records.len(), 1);
                assert!(matches!(records[0].rdata, RData::Cname(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_zone_cname_surfaces_target() {
        let z = example_zone();
        match z.lookup(&"ext.example.com".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Cname { chain, target } => {
                assert_eq!(chain.len(), 1);
                assert_eq!(target, "target.example.net".parse().unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delegation_returns_referral_with_glue() {
        let z = example_zone();
        match z.lookup(&"deep.sub.example.com".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Referral { cut, ns, glue } => {
                assert_eq!(cut, "sub.example.com".parse().unwrap());
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].rdata, RData::A(Ipv4Addr::new(198, 51, 100, 1)));
            }
            other => panic!("{other:?}"),
        }
        // Query at the cut itself also refers.
        assert!(matches!(
            z.lookup(&"sub.example.com".parse().unwrap(), RecordType::A),
            ZoneAnswer::Referral { .. }
        ));
    }

    #[test]
    fn wildcard_synthesis() {
        let z = example_zone();
        match z.lookup(&"anything.wild.example.com".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Answer { records } => {
                assert_eq!(
                    records[0].name,
                    "anything.wild.example.com".parse().unwrap()
                );
                assert_eq!(records[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 3)));
            }
            other => panic!("{other:?}"),
        }
        // The wildcard does not apply to names that exist.
        assert!(matches!(
            z.lookup(&"wild.example.com".parse().unwrap(), RecordType::A),
            ZoneAnswer::NoData { .. }
        ));
    }

    #[test]
    fn any_query_returns_all_rrsets() {
        let z = example_zone();
        match z.lookup(&"example.com".parse().unwrap(), RecordType::ANY) {
            ZoneAnswer::Answer { records } => {
                let types: Vec<RecordType> = records.iter().map(|r| r.rtype).collect();
                assert!(types.contains(&RecordType::A));
                assert!(types.contains(&RecordType::NS));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_bailiwick_rejected() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&"example.org".parse().unwrap(), RecordType::A),
            ZoneAnswer::NotInZone
        );
        let mut z2 = example_zone();
        assert!(!z2.add(Record::new(
            "example.org".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 9))
        )));
    }

    #[test]
    fn cname_loop_terminates() {
        let origin: Name = "loop.test".parse().unwrap();
        let mut z = Zone::new(origin.clone(), "ns1.loop.test".parse().unwrap(), 300);
        z.add(Record::new(
            "a.loop.test".parse().unwrap(),
            300,
            RData::Cname("b.loop.test".parse().unwrap()),
        ));
        z.add(Record::new(
            "b.loop.test".parse().unwrap(),
            300,
            RData::Cname("a.loop.test".parse().unwrap()),
        ));
        // Must not hang; returns the chain.
        match z.lookup(&"a.loop.test".parse().unwrap(), RecordType::A) {
            ZoneAnswer::Answer { records } => assert_eq!(records.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
