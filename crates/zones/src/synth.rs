//! The synthetic Internet: a procedural model of the public DNS namespace.
//!
//! Nothing is stored per-domain. Every fact — existence, hosting provider,
//! record contents, CAA configuration, per-nameserver flakiness — is a
//! deterministic function of `(seed, question)`, so the model covers 93M
//! base domains and the full IPv4 reverse tree in O(1) memory while giving
//! every component (resolvers, baselines, case studies) the same answers.
//!
//! The distributions are calibrated to the paper:
//! * Table 3 TLD mix (via [`crate::tlds`]).
//! * ~70% of corpus names resolve (Appendix A).
//! * §5 availability: ~0.55% of domains have a nameserver needing ≥2
//!   retries, ~0.01% needing 10, concentrated in `namebrightdns.com`, `.vn`
//!   and `.ng`; >99.99% of domains answer consistently across nameservers.
//! * §6 CAA deployment: ~1.69% of NOERROR domains, ccTLDs over-represented,
//!   `.pl` alone ~25% of CAA-enabled cc domains, tag and issuer mix.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use zdns_wire::rdata::{Caa, Mx, Soa, TxtData};
use zdns_wire::{Name, Question, RData, Record, RecordType};

use crate::addressing::{host_address, is_reserved, ServerRole};
use crate::hashing::{chance, h64, unit};
use crate::providers::{Provider, ProviderRegistry, ReliabilityClass, PROVIDER_NAMEBRIGHT};
use crate::tlds::{Tld, TldCategory, TldRegistry};
use crate::universe::{AuthResponse, LatencyClass, ServerProfile, Universe};

/// CAA ecosystem parameters (§6 defaults).
#[derive(Debug, Clone)]
pub struct CaaConfig {
    /// CAA rate for gTLD domains.
    pub rate_gtld: f64,
    /// CAA rate for ccTLD domains other than `.pl`.
    pub rate_cctld: f64,
    /// CAA rate for `.pl` domains (drives its 25%-of-cc share).
    pub rate_pl: f64,
    /// P(issue tag present | CAA holder).
    pub p_issue: f64,
    /// P(issuewild tag | CAA holder).
    pub p_issuewild: f64,
    /// P(iodef tag | CAA holder).
    pub p_iodef: f64,
    /// P(domain has only iodef | CAA holder) — the "Visa" population.
    pub p_iodef_only: f64,
    /// P(invalid tag | CAA holder), concentrated at one registrar.
    pub p_invalid: f64,
    /// Provider index whose domains produce most invalid tags.
    pub invalid_registrar: u16,
    /// P(CAA reachable only through a CNAME | CAA holder) ≈ 8000/1.08M.
    pub p_via_cname: f64,
    /// P(Let's Encrypt in issue set | CAA holder with issue).
    pub p_letsencrypt: f64,
    /// P(Comodo in issue set).
    pub p_comodo: f64,
    /// P(DigiCert in issue set).
    pub p_digicert: f64,
}

impl Default for CaaConfig {
    fn default() -> Self {
        CaaConfig {
            rate_gtld: 0.0158,
            rate_cctld: 0.0145,
            rate_pl: 0.085,
            p_issue: 0.968,
            p_issuewild: 0.5527,
            p_iodef: 0.0687,
            p_iodef_only: 0.0006,
            p_invalid: 0.00043,
            invalid_registrar: 3,
            p_via_cname: 0.0074,
            p_letsencrypt: 0.924,
            p_comodo: 0.52,
            p_digicert: 0.51,
        }
    }
}

/// Availability fault parameters (§5 defaults).
#[derive(Debug, Clone)]
pub struct FlakyConfig {
    /// P(domain has a lightly flaky NS) — needs ≥2 retries sometimes.
    pub p_light: f64,
    /// Baseline P(deeply flaky NS) — needs ~10 retries.
    pub p_deep_base: f64,
    /// Deep-flaky rate for namebright-hosted domains.
    pub p_deep_namebright: f64,
    /// Deep-flaky rate for `.vn` domains.
    pub p_deep_vn: f64,
    /// Deep-flaky rate for `.ng` domains.
    pub p_deep_ng: f64,
    /// Drop probability of a lightly flaky nameserver.
    pub light_drop: f64,
    /// Drop probability of a deeply flaky nameserver.
    pub deep_drop: f64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            p_light: 0.0054,
            p_deep_base: 0.00005,
            p_deep_namebright: 0.016,
            p_deep_vn: 0.00085,
            p_deep_ng: 0.00071,
            light_drop: 0.55,
            deep_drop: 0.90,
        }
    }
}

/// Full configuration of the synthetic Internet.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master seed; every fact derives from it.
    pub seed: u64,
    /// ccTLD count (Table 3: 486).
    pub n_cctlds: usize,
    /// New-gTLD count (Table 3: 1211).
    pub n_ngtlds: usize,
    /// Hosting provider count.
    pub n_providers: usize,
    /// P(a corpus base domain exists) ≈ 0.70 (Appendix A).
    pub domain_exists_prob: f64,
    /// P(an arbitrary additional subdomain fqdn exists).
    pub subdomain_exists_prob: f64,
    /// P(a public IPv4 address has a PTR record).
    pub ptr_exists_prob: f64,
    /// Fraction of reverse /16 zones whose operator delegates further at
    /// /24, as most real in-addr.arpa operators do. The /24 NS records
    /// dominate the PTR cache working set, which is what gives Figure 2's
    /// cache-size sweep its shape.
    pub rdns24_fraction: f64,
    /// P(a TLD→leaf referral carries no glue).
    pub glueless_prob: f64,
    /// P(one of a domain's nameservers is lame — answers REFUSED).
    pub lame_prob: f64,
    /// P(www is a CNAME to the apex rather than an A record).
    pub www_cname_prob: f64,
    /// P(domain has MX).
    pub mx_prob: f64,
    /// P(domain has TXT).
    pub txt_prob: f64,
    /// P(TXT holder publishes SPF).
    pub spf_given_txt: f64,
    /// P(domain apex has AAAA).
    pub aaaa_prob: f64,
    /// P(domain has a wildcard under the apex).
    pub wildcard_prob: f64,
    /// P(domain's A answers differ across its nameservers) — §5 says
    /// inconsistency is <0.01% of domains.
    pub inconsistent_prob: f64,
    /// CAA parameters.
    pub caa: CaaConfig,
    /// Availability fault parameters.
    pub flaky: FlakyConfig,
    /// TTL for infrastructure (NS/glue) records.
    pub infra_ttl: u32,
    /// TTL for leaf records.
    pub leaf_ttl: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0x5DA5_2D45,
            n_cctlds: 486,
            n_ngtlds: 1211,
            n_providers: 200,
            domain_exists_prob: 0.70,
            subdomain_exists_prob: 0.82,
            ptr_exists_prob: 0.62,
            rdns24_fraction: 0.85,
            glueless_prob: 0.12,
            lame_prob: 0.004,
            www_cname_prob: 0.30,
            mx_prob: 0.45,
            txt_prob: 0.55,
            spf_given_txt: 0.80,
            aaaa_prob: 0.35,
            wildcard_prob: 0.02,
            inconsistent_prob: 0.00005,
            caa: CaaConfig::default(),
            flaky: FlakyConfig::default(),
            infra_ttl: 172_800,
            leaf_ttl: 300,
        }
    }
}

/// How a domain's `www` label behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WwwKind {
    /// `www` has its own A record.
    ARecord,
    /// `www` is a CNAME to the apex.
    CnameToApex,
    /// `www` does not exist.
    Absent,
}

/// Per-nameserver flakiness of a domain (§5 availability model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyNs {
    /// Which of the domain's nameservers is flaky.
    pub ns_index: u8,
    /// Probability a query to that NS for this domain is dropped.
    pub drop_prob: f64,
    /// True for the ~10-retry population.
    pub deep: bool,
}

/// Everything derivable about one base domain — the ground truth the case
/// studies compare scan output against.
#[derive(Debug, Clone)]
pub struct DomainProfile {
    /// The base domain.
    pub base: Name,
    /// Whether it exists (resolves) at all.
    pub exists: bool,
    /// Hosting provider index.
    pub provider: u16,
    /// Number of nameservers serving it.
    pub ns_count: u8,
    /// Apex IPv4 address.
    pub apex_a: Ipv4Addr,
    /// Apex has AAAA.
    pub has_aaaa: bool,
    /// `www` behaviour.
    pub www: WwwKind,
    /// Has MX (and a `mail` host).
    pub has_mx: bool,
    /// Has TXT.
    pub has_txt: bool,
    /// TXT holder publishes SPF.
    pub has_spf: bool,
    /// Wildcard `*.base` exists.
    pub has_wildcard: bool,
    /// CAA records at the apex (empty = no CAA).
    pub caa_records: Vec<Caa>,
    /// CAA is reachable only via a CNAME hop (§6's 8000 domains).
    pub caa_via_cname: bool,
    /// One nameserver is lame (answers REFUSED).
    pub lame_ns: Option<u8>,
    /// The TLD→domain referral omits glue.
    pub glueless: bool,
    /// A answers differ across nameservers.
    pub inconsistent: bool,
    /// Flaky-nameserver model.
    pub flaky: Option<FlakyNs>,
}

/// The procedural universe.
pub struct SyntheticUniverse {
    cfg: SynthConfig,
    tlds: TldRegistry,
    providers: ProviderRegistry,
    /// Provider NS base domains (`cloudflare-dns.com`) → provider index,
    /// so infrastructure domains resolve coherently.
    provider_domains: HashMap<Name, u16>,
    arpa_index: u16,
}

impl SyntheticUniverse {
    /// Build the universe from a config.
    pub fn new(cfg: SynthConfig) -> SyntheticUniverse {
        let tlds = TldRegistry::generate(cfg.seed, cfg.n_cctlds, cfg.n_ngtlds);
        let providers = ProviderRegistry::generate(cfg.seed, cfg.n_providers);
        let provider_domains = providers
            .all()
            .iter()
            .map(|p| {
                let name: Name = providers
                    .ns_domain(p.index)
                    .parse()
                    .expect("provider domains are valid names");
                (name, p.index)
            })
            .collect();
        let arpa_index = tlds.by_label("arpa").expect("arpa exists").index;
        SyntheticUniverse {
            cfg,
            tlds,
            providers,
            provider_domains,
            arpa_index,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    /// The TLD registry.
    pub fn tlds(&self) -> &TldRegistry {
        &self.tlds
    }

    /// The provider registry.
    pub fn providers(&self) -> &ProviderRegistry {
        &self.providers
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The TLD of a name (its last label), if registered.
    pub fn tld_of(&self, name: &Name) -> Option<&Tld> {
        let last = name.labels().last()?;
        let label = String::from_utf8_lossy(last).to_ascii_lowercase();
        self.tlds.by_label(&label)
    }

    /// The base (registrable) domain of a name: its last two labels.
    pub fn base_of(&self, name: &Name) -> Option<Name> {
        if name.label_count() < 2 {
            return None;
        }
        Some(name.suffix(2))
    }

    fn base_key(&self, base: &Name) -> Vec<u8> {
        base.to_ascii_lower().into_bytes()
    }

    /// Does this base domain exist (delegated from its TLD)?
    pub fn domain_exists(&self, base: &Name) -> bool {
        if self.provider_domains.contains_key(base) {
            return true;
        }
        let Some(tld) = self.tld_of(base) else {
            return false;
        };
        if tld.category == TldCategory::Infra {
            return false;
        }
        chance(
            self.seed(),
            "exists",
            &self.base_key(base),
            self.cfg.domain_exists_prob,
        )
    }

    /// The provider hosting a base domain.
    pub fn provider_of(&self, base: &Name) -> &Provider {
        if let Some(&idx) = self.provider_domains.get(base) {
            return self.providers.by_index(idx).expect("registered provider");
        }
        self.providers
            .sample(h64(self.seed(), "provider", &self.base_key(base)))
    }

    /// Full derived profile for a base domain.
    pub fn domain_profile(&self, base: &Name) -> DomainProfile {
        let key = self.base_key(base);
        let seed = self.seed();
        let provider = self.provider_of(base);
        let exists = self.domain_exists(base);
        let tld = self.tld_of(base);
        let tld_label = tld.map(|t| t.label.as_str()).unwrap_or("");
        let tld_category = tld.map(|t| t.category);

        let www = if chance(seed, "www-exists", &key, 0.95) {
            if chance(seed, "www-cname", &key, self.cfg.www_cname_prob) {
                WwwKind::CnameToApex
            } else {
                WwwKind::ARecord
            }
        } else {
            WwwKind::Absent
        };
        let has_txt = chance(seed, "txt", &key, self.cfg.txt_prob);

        // CAA (§6 model).
        let caa_rate = match (tld_category, tld_label) {
            (Some(TldCategory::CcTld), "pl") => self.cfg.caa.rate_pl,
            (Some(TldCategory::CcTld), _) => self.cfg.caa.rate_cctld,
            (Some(TldCategory::Infra), _) | (None, _) => 0.0,
            _ => self.cfg.caa.rate_gtld,
        };
        let has_caa = chance(seed, "caa", &key, caa_rate);
        let mut caa_records = Vec::new();
        let mut caa_via_cname = false;
        if has_caa {
            let c = &self.cfg.caa;
            caa_via_cname = chance(seed, "caa-cname", &key, c.p_via_cname);
            let iodef_only = chance(seed, "caa-iodef-only", &key, c.p_iodef_only);
            let invalid_rate = if provider.index == c.invalid_registrar {
                c.p_invalid * 40.0
            } else {
                c.p_invalid * 0.3
            };
            let invalid = chance(seed, "caa-invalid", &key, invalid_rate);
            if invalid {
                // The registrar bug: a misspelled tag that validators reject.
                caa_records.push(Caa {
                    flags: 0,
                    tag: b"issuer".to_vec(),
                    value: b"comodoca.com".to_vec(),
                });
            } else if iodef_only {
                caa_records.push(Caa {
                    flags: 0,
                    tag: b"iodef".to_vec(),
                    value: b"mailto:security@visa-like.example".to_vec(),
                });
            } else {
                if chance(seed, "caa-issue", &key, c.p_issue) {
                    if chance(seed, "caa-le", &key, c.p_letsencrypt) {
                        caa_records.push(issue_record("issue", "letsencrypt.org"));
                    }
                    if chance(seed, "caa-comodo", &key, c.p_comodo) {
                        caa_records.push(issue_record("issue", "comodoca.com"));
                    }
                    if chance(seed, "caa-digicert", &key, c.p_digicert) {
                        caa_records.push(issue_record("issue", "digicert.com"));
                    }
                    if caa_records.is_empty() {
                        caa_records.push(issue_record("issue", "pki.goog"));
                    }
                }
                if chance(seed, "caa-issuewild", &key, c.p_issuewild) {
                    let wild_val = if chance(seed, "caa-le-wild", &key, c.p_letsencrypt) {
                        "letsencrypt.org"
                    } else {
                        "digicert.com"
                    };
                    caa_records.push(issue_record("issuewild", wild_val));
                }
                if chance(seed, "caa-iodef", &key, c.p_iodef) {
                    caa_records.push(Caa {
                        flags: 0,
                        tag: b"iodef".to_vec(),
                        value: format!("mailto:hostmaster@{}", base.to_ascii_lower()).into_bytes(),
                    });
                }
            }
        }

        // §5 availability model.
        let f = &self.cfg.flaky;
        let deep_rate = if provider.index == PROVIDER_NAMEBRIGHT {
            f.p_deep_namebright
        } else {
            match tld_label {
                "vn" => f.p_deep_vn,
                "ng" => f.p_deep_ng,
                _ => f.p_deep_base,
            }
        };
        let ns_count = provider.ns_count;
        let flaky = if chance(seed, "flaky-deep", &key, deep_rate) {
            Some(FlakyNs {
                ns_index: (h64(seed, "flaky-ns", &key) % ns_count as u64) as u8,
                drop_prob: f.deep_drop,
                deep: true,
            })
        } else if chance(seed, "flaky-light", &key, f.p_light) {
            Some(FlakyNs {
                ns_index: (h64(seed, "flaky-ns", &key) % ns_count as u64) as u8,
                drop_prob: f.light_drop,
                deep: false,
            })
        } else {
            None
        };

        let inconsistent =
            !provider.consistent || chance(seed, "inconsistent", &key, self.cfg.inconsistent_prob);

        DomainProfile {
            base: base.clone(),
            exists,
            provider: provider.index,
            ns_count,
            apex_a: host_address(h64(seed, "apex-a", &key)),
            has_aaaa: chance(seed, "aaaa", &key, self.cfg.aaaa_prob),
            www,
            has_mx: chance(seed, "mx", &key, self.cfg.mx_prob),
            has_txt,
            has_spf: has_txt && chance(seed, "spf", &key, self.cfg.spf_given_txt),
            has_wildcard: chance(seed, "wildcard", &key, self.cfg.wildcard_prob),
            caa_records,
            caa_via_cname,
            lame_ns: if chance(seed, "lame", &key, self.cfg.lame_prob) {
                Some((h64(seed, "lame-ns", &key) % ns_count as u64) as u8)
            } else {
                None
            },
            glueless: chance(seed, "glueless", &key, self.cfg.glueless_prob),
            inconsistent,
            flaky,
        }
    }

    /// Whether the /16 `a.b` delegates its /24s to dedicated servers.
    pub fn rdns16_delegates_deeper(&self, a: u8, b: u8) -> bool {
        chance(self.seed(), "rdns-deep", &[a, b], self.cfg.rdns24_fraction)
    }

    /// Whether a public IPv4 address has a PTR record.
    pub fn ptr_exists(&self, ip: Ipv4Addr) -> bool {
        !is_reserved(ip) && chance(self.seed(), "ptr", &ip.octets(), self.cfg.ptr_exists_prob)
    }

    /// The synthesized PTR target for an address.
    pub fn ptr_name(&self, ip: Ipv4Addr) -> Name {
        let o = ip.octets();
        let asn = h64(self.seed(), "ptr-asn", &[o[0], o[1]]) % 64_000 + 1000;
        format!("{}-{}-{}-{}.dyn.as{}.net", o[0], o[1], o[2], o[3], asn)
            .parse()
            .expect("synthesized PTR names are valid")
    }

    // ---- responders ------------------------------------------------------

    fn root_soa(&self) -> Record {
        Record::new(
            Name::root(),
            86_400,
            RData::Soa(Soa {
                mname: "a.root-servers.net".parse().expect("static"),
                rname: "nstld.verisign-grs.com".parse().expect("static"),
                serial: 20_220_518,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            }),
        )
    }

    fn tld_soa(&self, tld: &Tld) -> Record {
        let apex: Name = tld.label.parse().expect("TLD labels are valid");
        Record::new(
            apex.clone(),
            900,
            RData::Soa(Soa {
                mname: self.tld_ns_name(tld, 0),
                rname: apex.child("hostmaster").expect("valid"),
                serial: 1,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 900,
            }),
        )
    }

    fn tld_ns_name(&self, tld: &Tld, server: u8) -> Name {
        format!("ns{}.nic.{}", server + 1, tld.label)
            .parse()
            .expect("TLD NS names are valid")
    }

    fn tld_referral(&self, tld: &Tld) -> AuthResponse {
        let apex: Name = tld.label.parse().expect("valid");
        let mut ns = Vec::new();
        let mut glue = Vec::new();
        for j in 0..tld.server_count {
            let ns_name = self.tld_ns_name(tld, j);
            ns.push(Record::new(
                apex.clone(),
                self.cfg.infra_ttl,
                RData::Ns(ns_name.clone()),
            ));
            glue.push(Record::new(
                ns_name,
                self.cfg.infra_ttl,
                RData::A(
                    ServerRole::Tld {
                        tld_index: tld.index,
                        server: j,
                    }
                    .address(),
                ),
            ));
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: false,
            answers: Vec::new(),
            authorities: ns,
            additionals: glue,
        }
    }

    fn respond_root(&self, q: &Question) -> AuthResponse {
        if q.name.is_root() {
            // Priming query: all roots + glue.
            let hints = self.root_hints();
            let answers = hints
                .iter()
                .map(|(n, _)| Record::new(Name::root(), 518_400, RData::Ns(n.clone())))
                .collect();
            let additionals = hints
                .iter()
                .map(|(n, a)| Record::new(n.clone(), 518_400, RData::A(*a)))
                .collect();
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: if q.qtype == RecordType::NS || q.qtype == RecordType::ANY {
                    answers
                } else {
                    Vec::new()
                },
                authorities: Vec::new(),
                additionals,
            };
        }
        match self.tld_of(&q.name) {
            Some(tld) => self.tld_referral(tld),
            None => AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![self.root_soa()],
                additionals: Vec::new(),
            },
        }
    }

    fn leaf_referral(&self, base: &Name, profile: &DomainProfile) -> AuthResponse {
        let provider = self
            .providers
            .by_index(profile.provider)
            .expect("valid provider");
        let mut ns = Vec::new();
        let mut glue = Vec::new();
        for k in 0..provider.ns_count {
            let ns_name: Name = self
                .providers
                .ns_hostname(provider.index, k)
                .parse()
                .expect("valid NS hostnames");
            ns.push(Record::new(
                base.clone(),
                self.cfg.infra_ttl,
                RData::Ns(ns_name.clone()),
            ));
            if !profile.glueless {
                glue.push(Record::new(
                    ns_name,
                    self.cfg.infra_ttl,
                    RData::A(
                        ServerRole::ProviderAuth {
                            provider: provider.index,
                            server: k,
                        }
                        .address(),
                    ),
                ));
            }
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: false,
            answers: Vec::new(),
            authorities: ns,
            additionals: glue,
        }
    }

    fn respond_tld(&self, tld_index: u16, q: &Question) -> AuthResponse {
        let Some(tld) = self.tlds.by_index(tld_index) else {
            return AuthResponse::refused();
        };
        let apex: Name = tld.label.parse().expect("valid");
        // The arpa servers also serve in-addr.arpa.
        if tld.index == self.arpa_index {
            return self.respond_arpa(q);
        }
        if !q.name.is_subdomain_of(&apex) {
            return AuthResponse::refused();
        }
        if q.name == apex {
            return self.tld_apex_answer(tld, q);
        }
        // Names for the TLD's own nameservers (`ns1.nic.<tld>`).
        let nic = apex.child("nic").expect("valid");
        if q.name.is_subdomain_of(&nic) {
            return self.tld_nic_answer(tld, q, &nic);
        }
        let Some(base) = self.base_of(&q.name) else {
            return AuthResponse::refused();
        };
        if self.domain_exists(&base) {
            let profile = self.domain_profile(&base);
            self.leaf_referral(&base, &profile)
        } else {
            AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![self.tld_soa(tld)],
                additionals: Vec::new(),
            }
        }
    }

    fn tld_apex_answer(&self, tld: &Tld, q: &Question) -> AuthResponse {
        let apex: Name = tld.label.parse().expect("valid");
        let mut answers = Vec::new();
        if matches!(q.qtype, RecordType::NS | RecordType::ANY) {
            for j in 0..tld.server_count {
                answers.push(Record::new(
                    apex.clone(),
                    self.cfg.infra_ttl,
                    RData::Ns(self.tld_ns_name(tld, j)),
                ));
            }
        }
        if matches!(q.qtype, RecordType::SOA | RecordType::ANY) {
            answers.push(self.tld_soa(tld));
        }
        if answers.is_empty() {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![self.tld_soa(tld)],
                additionals: Vec::new(),
            };
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: true,
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    fn tld_nic_answer(&self, tld: &Tld, q: &Question, nic: &Name) -> AuthResponse {
        // ns{j}.nic.<tld> has an A record pointing at the TLD server.
        if q.name.label_count() == nic.label_count() + 1 {
            let first =
                String::from_utf8_lossy(q.name.label(0).unwrap_or(b"")).to_ascii_lowercase();
            if let Some(j) = first
                .strip_prefix("ns")
                .and_then(|s| s.parse::<u8>().ok())
                .filter(|&j| j >= 1 && j <= tld.server_count)
            {
                if matches!(q.qtype, RecordType::A | RecordType::ANY) {
                    return AuthResponse {
                        rcode: zdns_wire::Rcode::NoError,
                        authoritative: true,
                        answers: vec![Record::new(
                            q.name.clone(),
                            self.cfg.infra_ttl,
                            RData::A(
                                ServerRole::Tld {
                                    tld_index: tld.index,
                                    server: j - 1,
                                }
                                .address(),
                            ),
                        )],
                        authorities: Vec::new(),
                        additionals: Vec::new(),
                    };
                }
                return AuthResponse {
                    rcode: zdns_wire::Rcode::NoError,
                    authoritative: true,
                    answers: Vec::new(),
                    authorities: vec![self.tld_soa(tld)],
                    additionals: Vec::new(),
                };
            }
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NxDomain,
            authoritative: true,
            answers: Vec::new(),
            authorities: vec![self.tld_soa(tld)],
            additionals: Vec::new(),
        }
    }

    fn respond_arpa(&self, q: &Question) -> AuthResponse {
        let in_addr: Name = "in-addr.arpa".parse().expect("static");
        let arpa: Name = "arpa".parse().expect("static");
        if !q.name.is_subdomain_of(&arpa) {
            return AuthResponse::refused();
        }
        let soa = Record::new(
            in_addr.clone(),
            3600,
            RData::Soa(Soa {
                mname: "ns1.in-addr.arpa".parse().expect("static"),
                rname: "hostmaster.in-addr.arpa".parse().expect("static"),
                serial: 1,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 3600,
            }),
        );
        if q.name == arpa || q.name == in_addr {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        if !q.name.is_subdomain_of(&in_addr) {
            // ip6.arpa and friends are not modelled: authoritative NXDOMAIN.
            return AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        // d.c.b.a.in-addr.arpa → labels[len-3] is `a`.
        let labels: Vec<&[u8]> = q.name.labels().collect();
        let a_label = &labels[labels.len() - 3];
        let Some(a) = parse_octet(a_label) else {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        };
        // Referral to the /8 zone.
        let cut: Name = format!("{a}.in-addr.arpa").parse().expect("valid");
        let mut ns = Vec::new();
        let mut glue = Vec::new();
        for j in 0..2u8 {
            let ns_name: Name = format!("ns{}.{}.in-addr.arpa", j + 1, a)
                .parse()
                .expect("valid");
            ns.push(Record::new(
                cut.clone(),
                self.cfg.infra_ttl,
                RData::Ns(ns_name.clone()),
            ));
            glue.push(Record::new(
                ns_name,
                self.cfg.infra_ttl,
                RData::A(
                    ServerRole::Rdns8 {
                        octet: a,
                        server: j,
                    }
                    .address(),
                ),
            ));
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: false,
            answers: Vec::new(),
            authorities: ns,
            additionals: glue,
        }
    }

    fn respond_rdns8(&self, octet: u8, q: &Question) -> AuthResponse {
        let apex: Name = format!("{octet}.in-addr.arpa").parse().expect("valid");
        if !q.name.is_subdomain_of(&apex) {
            return AuthResponse::refused();
        }
        let soa = self.rdns_soa(&apex);
        let labels: Vec<&[u8]> = q.name.labels().collect();
        // Handle the zone's own NS host A records (`ns1.<octet>.in-addr.arpa`).
        if labels.len() == 4 {
            let first = String::from_utf8_lossy(labels[0]).to_ascii_lowercase();
            if let Some(j) = first.strip_prefix("ns").and_then(|s| s.parse::<u8>().ok()) {
                if (1..=2).contains(&j) && matches!(q.qtype, RecordType::A | RecordType::ANY) {
                    return AuthResponse {
                        rcode: zdns_wire::Rcode::NoError,
                        authoritative: true,
                        answers: vec![Record::new(
                            q.name.clone(),
                            self.cfg.infra_ttl,
                            RData::A(
                                ServerRole::Rdns8 {
                                    octet,
                                    server: j - 1,
                                }
                                .address(),
                            ),
                        )],
                        authorities: Vec::new(),
                        additionals: Vec::new(),
                    };
                }
            }
        }
        if q.name == apex || labels.len() < 4 {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        // c.b.<octet>.in-addr.arpa or deeper: refer to the /16 zone.
        let b_label = &labels[labels.len() - 4];
        let Some(b) = parse_octet(b_label) else {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        };
        let cut: Name = format!("{b}.{octet}.in-addr.arpa").parse().expect("valid");
        let mut ns = Vec::new();
        let mut glue = Vec::new();
        for j in 0..2u8 {
            let ns_name: Name = format!("ns{}.{}.{}.in-addr.arpa", j + 1, b, octet)
                .parse()
                .expect("valid");
            ns.push(Record::new(
                cut.clone(),
                self.cfg.infra_ttl,
                RData::Ns(ns_name.clone()),
            ));
            glue.push(Record::new(
                ns_name,
                self.cfg.infra_ttl,
                RData::A(
                    ServerRole::Rdns16 {
                        a: octet,
                        b,
                        server: j,
                    }
                    .address(),
                ),
            ));
        }
        AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: false,
            answers: Vec::new(),
            authorities: ns,
            additionals: glue,
        }
    }

    fn rdns_soa(&self, apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").expect("valid"),
                rname: apex.child("hostmaster").expect("valid"),
                serial: 1,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 3600,
            }),
        )
    }

    fn respond_rdns16(&self, a: u8, b: u8, q: &Question) -> AuthResponse {
        let apex: Name = format!("{b}.{a}.in-addr.arpa").parse().expect("valid");
        if !q.name.is_subdomain_of(&apex) {
            return AuthResponse::refused();
        }
        let soa = self.rdns_soa(&apex);
        let labels: Vec<&[u8]> = q.name.labels().collect();
        // NS host addresses for this zone.
        if labels.len() == 5 {
            let first = String::from_utf8_lossy(labels[0]).to_ascii_lowercase();
            if let Some(j) = first.strip_prefix("ns").and_then(|s| s.parse::<u8>().ok()) {
                if (1..=2).contains(&j) && matches!(q.qtype, RecordType::A | RecordType::ANY) {
                    return AuthResponse {
                        rcode: zdns_wire::Rcode::NoError,
                        authoritative: true,
                        answers: vec![Record::new(
                            q.name.clone(),
                            self.cfg.infra_ttl,
                            RData::A(
                                ServerRole::Rdns16 {
                                    a,
                                    b,
                                    server: j - 1,
                                }
                                .address(),
                            ),
                        )],
                        authorities: Vec::new(),
                        additionals: Vec::new(),
                    };
                }
            }
        }
        if labels.len() != 6 {
            // The apex or an empty non-terminal (c.b.a.in-addr.arpa).
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        let (Some(d), Some(c)) = (parse_octet(labels[0]), parse_octet(labels[1])) else {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        };
        if self.rdns16_delegates_deeper(a, b) {
            // This operator splits the zone at /24: refer.
            let cut: Name = format!("{c}.{b}.{a}.in-addr.arpa").parse().expect("valid");
            let ns_name: Name = format!("ns1.{c}.{b}.{a}.in-addr.arpa")
                .parse()
                .expect("valid");
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: false,
                answers: Vec::new(),
                authorities: vec![Record::new(
                    cut,
                    self.cfg.infra_ttl,
                    RData::Ns(ns_name.clone()),
                )],
                additionals: vec![Record::new(
                    ns_name,
                    self.cfg.infra_ttl,
                    RData::A(ServerRole::Rdns24 { a, b, c }.address()),
                )],
            };
        }
        let ip = Ipv4Addr::new(a, b, c, d);
        if q.qtype != RecordType::PTR && q.qtype != RecordType::ANY {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        if self.ptr_exists(ip) {
            AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: vec![Record::new(
                    q.name.clone(),
                    self.cfg.leaf_ttl,
                    RData::Ptr(self.ptr_name(ip)),
                )],
                authorities: Vec::new(),
                additionals: Vec::new(),
            }
        } else {
            AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            }
        }
    }

    fn respond_rdns24(&self, a: u8, b: u8, c: u8, q: &Question) -> AuthResponse {
        let apex: Name = format!("{c}.{b}.{a}.in-addr.arpa").parse().expect("valid");
        if !q.name.is_subdomain_of(&apex) || !self.rdns16_delegates_deeper(a, b) {
            return AuthResponse::refused();
        }
        let soa = self.rdns_soa(&apex);
        let labels: Vec<&[u8]> = q.name.labels().collect();
        // NS host address for this zone.
        if labels.len() == 6 {
            let first = String::from_utf8_lossy(labels[0]).to_ascii_lowercase();
            if first == "ns1" && matches!(q.qtype, RecordType::A | RecordType::ANY) {
                return AuthResponse {
                    rcode: zdns_wire::Rcode::NoError,
                    authoritative: true,
                    answers: vec![Record::new(
                        q.name.clone(),
                        self.cfg.infra_ttl,
                        RData::A(ServerRole::Rdns24 { a, b, c }.address()),
                    )],
                    authorities: Vec::new(),
                    additionals: Vec::new(),
                };
            }
        }
        if labels.len() != 6 {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        let Some(d) = parse_octet(labels[0]) else {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        };
        let ip = Ipv4Addr::new(a, b, c, d);
        if q.qtype != RecordType::PTR && q.qtype != RecordType::ANY {
            return AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            };
        }
        if self.ptr_exists(ip) {
            AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: vec![Record::new(
                    q.name.clone(),
                    self.cfg.leaf_ttl,
                    RData::Ptr(self.ptr_name(ip)),
                )],
                authorities: Vec::new(),
                additionals: Vec::new(),
            }
        } else {
            AuthResponse {
                rcode: zdns_wire::Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            }
        }
    }

    fn respond_provider(&self, provider: u16, server: u8, q: &Question) -> AuthResponse {
        let Some(p) = self.providers.by_index(provider) else {
            return AuthResponse::refused();
        };
        if server >= p.ns_count {
            return AuthResponse::refused();
        }
        let Some(base) = self.base_of(&q.name) else {
            return AuthResponse::refused();
        };
        if !self.domain_exists(&base) || self.provider_of(&base).index != provider {
            // Lame: this server is not authoritative for the name.
            return AuthResponse::refused();
        }
        let profile = self.domain_profile(&base);
        // A lame NS answers REFUSED even for its own domains (§3.1's lame
        // delegations).
        if profile.lame_ns == Some(server) {
            return AuthResponse::refused();
        }
        // The provider's own NS-host domain answers its ns{k} A records.
        if let Some(&own) = self.provider_domains.get(&base) {
            if own == provider {
                if let Some(resp) = self.provider_domain_answer(p, &base, q) {
                    return resp;
                }
            }
        }
        self.leaf_answer(p, server, &base, &profile, q)
    }

    /// Answers within the provider's own `<label>.com` domain (NS hosts).
    fn provider_domain_answer(
        &self,
        p: &Provider,
        base: &Name,
        q: &Question,
    ) -> Option<AuthResponse> {
        if q.name.label_count() != base.label_count() + 1 {
            return None;
        }
        let first = String::from_utf8_lossy(q.name.label(0).unwrap_or(b"")).to_ascii_lowercase();
        let k = first
            .strip_prefix("ns")
            .and_then(|s| s.parse::<u8>().ok())?;
        if k < 1 || k > p.ns_count {
            return None;
        }
        if matches!(q.qtype, RecordType::A | RecordType::ANY) {
            Some(AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: vec![Record::new(
                    q.name.clone(),
                    self.cfg.infra_ttl,
                    RData::A(
                        ServerRole::ProviderAuth {
                            provider: p.index,
                            server: k - 1,
                        }
                        .address(),
                    ),
                )],
                authorities: Vec::new(),
                additionals: Vec::new(),
            })
        } else {
            Some(AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![self.leaf_soa(base)],
                additionals: Vec::new(),
            })
        }
    }

    fn leaf_soa(&self, base: &Name) -> Record {
        let provider = self.provider_of(base);
        Record::new(
            base.clone(),
            self.cfg.leaf_ttl,
            RData::Soa(Soa {
                mname: self
                    .providers
                    .ns_hostname(provider.index, 0)
                    .parse()
                    .expect("valid"),
                rname: base.child("hostmaster").expect("valid"),
                serial: 2022,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: self.cfg.leaf_ttl,
            }),
        )
    }

    fn apex_a_value(&self, profile: &DomainProfile, server: u8) -> Ipv4Addr {
        if profile.inconsistent {
            // §5: the rare inconsistent domains answer differently per NS.
            let mut key = self.base_key(&profile.base);
            key.push(server);
            host_address(h64(self.seed(), "apex-a-inconsistent", &key))
        } else {
            profile.apex_a
        }
    }

    fn leaf_answer(
        &self,
        p: &Provider,
        server: u8,
        base: &Name,
        profile: &DomainProfile,
        q: &Question,
    ) -> AuthResponse {
        let ttl = self.cfg.leaf_ttl;
        let nodata = || AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: true,
            answers: Vec::new(),
            authorities: vec![self.leaf_soa(base)],
            additionals: Vec::new(),
        };
        let nxdomain = || AuthResponse {
            rcode: zdns_wire::Rcode::NxDomain,
            authoritative: true,
            answers: Vec::new(),
            authorities: vec![self.leaf_soa(base)],
            additionals: Vec::new(),
        };
        let answer = |records: Vec<Record>| AuthResponse {
            rcode: zdns_wire::Rcode::NoError,
            authoritative: true,
            answers: records,
            authorities: Vec::new(),
            additionals: Vec::new(),
        };

        if q.name == *base {
            return match q.qtype {
                RecordType::A => answer(vec![Record::new(
                    base.clone(),
                    ttl,
                    RData::A(self.apex_a_value(profile, server)),
                )]),
                RecordType::AAAA if profile.has_aaaa => {
                    let h = h64(self.seed(), "apex-aaaa", &self.base_key(base));
                    let segs = [
                        0x2001u16,
                        0x0db8 ^ (h >> 48) as u16,
                        (h >> 32) as u16,
                        (h >> 16) as u16,
                        0,
                        0,
                        0,
                        (h as u16) | 1,
                    ];
                    answer(vec![Record::new(
                        base.clone(),
                        ttl,
                        RData::Aaaa(segs.into()),
                    )])
                }
                RecordType::NS => {
                    let records = (0..p.ns_count)
                        .map(|k| {
                            Record::new(
                                base.clone(),
                                ttl,
                                RData::Ns(
                                    self.providers
                                        .ns_hostname(p.index, k)
                                        .parse()
                                        .expect("valid"),
                                ),
                            )
                        })
                        .collect();
                    answer(records)
                }
                RecordType::SOA => answer(vec![self.leaf_soa(base)]),
                RecordType::MX if profile.has_mx => answer(vec![Record::new(
                    base.clone(),
                    ttl,
                    RData::Mx(Mx {
                        preference: 10,
                        exchange: base.child("mail").expect("valid"),
                    }),
                )]),
                RecordType::TXT if profile.has_txt => {
                    let mut records = Vec::new();
                    if profile.has_spf {
                        records.push(Record::new(
                            base.clone(),
                            ttl,
                            RData::Txt(TxtData::from_text("v=spf1 mx a -all")),
                        ));
                    }
                    records.push(Record::new(
                        base.clone(),
                        ttl,
                        RData::Txt(TxtData::from_text(&format!(
                            "site-verification={:016x}",
                            h64(self.seed(), "txt-token", &self.base_key(base))
                        ))),
                    ));
                    answer(records)
                }
                RecordType::CAA => {
                    if profile.caa_records.is_empty() {
                        nodata()
                    } else if profile.caa_via_cname {
                        // §6: ~8000 domains need a CNAME hop for CAA.
                        let target: Name = format!("caa.{}", self.providers.ns_domain(p.index))
                            .parse()
                            .expect("valid");
                        answer(vec![Record::new(base.clone(), ttl, RData::Cname(target))])
                    } else {
                        let records = profile
                            .caa_records
                            .iter()
                            .map(|c| Record::new(base.clone(), ttl, RData::Caa(c.clone())))
                            .collect();
                        answer(records)
                    }
                }
                RecordType::ANY => answer(vec![Record::new(
                    base.clone(),
                    ttl,
                    RData::A(self.apex_a_value(profile, server)),
                )]),
                _ => nodata(),
            };
        }

        // Subdomain handling.
        let sub_label =
            String::from_utf8_lossy(q.name.label(0).unwrap_or(b"")).to_ascii_lowercase();
        let depth = q.name.label_count() - base.label_count();
        if depth == 1 {
            match sub_label.as_str() {
                "www" => match profile.www {
                    WwwKind::Absent => {
                        if profile.has_wildcard {
                            return self.wildcard_answer(base, profile, q, server);
                        }
                        return nxdomain();
                    }
                    WwwKind::CnameToApex => {
                        let mut records =
                            vec![Record::new(q.name.clone(), ttl, RData::Cname(base.clone()))];
                        if matches!(q.qtype, RecordType::A | RecordType::ANY) {
                            records.push(Record::new(
                                base.clone(),
                                ttl,
                                RData::A(self.apex_a_value(profile, server)),
                            ));
                        }
                        return answer(records);
                    }
                    WwwKind::ARecord => {
                        if matches!(q.qtype, RecordType::A | RecordType::ANY) {
                            let mut key = self.base_key(base);
                            key.extend_from_slice(b"|www");
                            return answer(vec![Record::new(
                                q.name.clone(),
                                ttl,
                                RData::A(host_address(h64(self.seed(), "sub-a", &key))),
                            )]);
                        }
                        return nodata();
                    }
                },
                "mail" if profile.has_mx => {
                    if matches!(q.qtype, RecordType::A | RecordType::ANY) {
                        let mut key = self.base_key(base);
                        key.extend_from_slice(b"|mail");
                        return answer(vec![Record::new(
                            q.name.clone(),
                            ttl,
                            RData::A(host_address(h64(self.seed(), "sub-a", &key))),
                        )]);
                    }
                    return nodata();
                }
                "caa"
                    // Target of §6 CNAME-reached CAA (on provider domains).
                    if self.provider_domains.get(base) == Some(&p.index)
                        && q.qtype == RecordType::CAA
                    => {
                        return answer(vec![Record::new(
                            q.name.clone(),
                            ttl,
                            RData::Caa(issue_record("issue", "letsencrypt.org")),
                        )]);
                    }
                _ => {}
            }
        }
        // Generic subdomain: exists by hash, else wildcard, else NXDOMAIN.
        let fqdn_key = q.name.to_ascii_lower().into_bytes();
        if chance(
            self.seed(),
            "sub-exists",
            &fqdn_key,
            self.cfg.subdomain_exists_prob,
        ) {
            if matches!(q.qtype, RecordType::A | RecordType::ANY) {
                return answer(vec![Record::new(
                    q.name.clone(),
                    ttl,
                    RData::A(host_address(h64(self.seed(), "sub-a", &fqdn_key))),
                )]);
            }
            return nodata();
        }
        if profile.has_wildcard {
            return self.wildcard_answer(base, profile, q, server);
        }
        nxdomain()
    }

    fn wildcard_answer(
        &self,
        base: &Name,
        profile: &DomainProfile,
        q: &Question,
        server: u8,
    ) -> AuthResponse {
        if matches!(q.qtype, RecordType::A | RecordType::ANY) {
            AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: vec![Record::new(
                    q.name.clone(),
                    self.cfg.leaf_ttl,
                    RData::A(self.apex_a_value(profile, server)),
                )],
                authorities: Vec::new(),
                additionals: Vec::new(),
            }
        } else {
            AuthResponse {
                rcode: zdns_wire::Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![self.leaf_soa(base)],
                additionals: Vec::new(),
            }
        }
    }
}

fn parse_octet(label: &[u8]) -> Option<u8> {
    let s = std::str::from_utf8(label).ok()?;
    // Reject leading zeros and empty labels the way the reverse tree does.
    if s.is_empty() || s.len() > 3 || (s.len() > 1 && s.starts_with('0')) {
        return None;
    }
    s.parse().ok()
}

fn issue_record(tag: &str, value: &str) -> Caa {
    Caa {
        flags: 0,
        tag: tag.as_bytes().to_vec(),
        value: value.as_bytes().to_vec(),
    }
}

impl Universe for SyntheticUniverse {
    fn respond(&self, server: Ipv4Addr, question: &Question) -> Option<AuthResponse> {
        let role = ServerRole::decode(server)?;
        Some(match role {
            ServerRole::Root { .. } => self.respond_root(question),
            ServerRole::Tld { tld_index, .. } => self.respond_tld(tld_index, question),
            ServerRole::ProviderAuth { provider, server } => {
                self.respond_provider(provider, server, question)
            }
            ServerRole::Rdns8 { octet, .. } => self.respond_rdns8(octet, question),
            ServerRole::Rdns16 { a, b, .. } => self.respond_rdns16(a, b, question),
            ServerRole::Rdns24 { a, b, c } => self.respond_rdns24(a, b, c, question),
        })
    }

    fn server_profile(&self, server: Ipv4Addr) -> ServerProfile {
        match ServerRole::decode(server) {
            Some(ServerRole::Root { .. }) => ServerProfile {
                latency: LatencyClass::Fast,
                base_drop: 0.0005,
                processing_us: 50,
            },
            Some(ServerRole::Tld { .. }) => ServerProfile {
                latency: LatencyClass::Fast,
                base_drop: 0.001,
                processing_us: 60,
            },
            Some(ServerRole::ProviderAuth { provider, .. }) => {
                let p = self.providers.by_index(provider);
                match p.map(|p| (p.latency, p.reliability)) {
                    Some((latency, reliability)) => ServerProfile {
                        latency,
                        base_drop: match reliability {
                            ReliabilityClass::Excellent => 0.0005,
                            ReliabilityClass::Good => 0.005,
                            ReliabilityClass::Poor => 0.03,
                            ReliabilityClass::Blocking => 0.01,
                        },
                        processing_us: 120,
                    },
                    None => ServerProfile::default(),
                }
            }
            Some(ServerRole::Rdns8 { .. }) => ServerProfile {
                latency: LatencyClass::Medium,
                base_drop: 0.002,
                processing_us: 100,
            },
            Some(ServerRole::Rdns24 { a, b, .. }) | Some(ServerRole::Rdns16 { a, b, .. }) => {
                // Reverse-zone quality varies by operator; hash the /16.
                let h = h64(self.seed(), "rdns-profile", &[a, b]);
                ServerProfile {
                    latency: match h % 10 {
                        0..=4 => LatencyClass::Medium,
                        5..=7 => LatencyClass::Fast,
                        _ => LatencyClass::Slow,
                    },
                    base_drop: 0.002 + unit(h) * 0.01,
                    processing_us: 100,
                }
            }
            None => ServerProfile::default(),
        }
    }

    fn drop_probability(&self, server: Ipv4Addr, qname: &Name) -> f64 {
        // §5 per-(domain, nameserver) probabilistic blocking.
        let Some(ServerRole::ProviderAuth {
            provider,
            server: k,
        }) = ServerRole::decode(server)
        else {
            return 0.0;
        };
        let Some(base) = self.base_of(qname) else {
            return 0.0;
        };
        if !self.domain_exists(&base) || self.provider_of(&base).index != provider {
            return 0.0;
        }
        match self.domain_profile(&base).flaky {
            Some(f) if f.ns_index == k => f.drop_prob,
            _ => 0.0,
        }
    }

    fn root_hints(&self) -> Vec<(Name, Ipv4Addr)> {
        (0..13u8)
            .map(|i| {
                let letter = (b'a' + i) as char;
                let name: Name = format!("{letter}.root-servers.net").parse().expect("valid");
                (name, ServerRole::Root { index: i }.address())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::Rcode;

    fn universe() -> SyntheticUniverse {
        SyntheticUniverse::new(SynthConfig::default())
    }

    fn existing_domain(u: &SyntheticUniverse, tld: &str) -> Name {
        for i in 0..10_000 {
            let name: Name = format!("domain{i}.{tld}").parse().unwrap();
            if u.domain_exists(&name) {
                return name;
            }
        }
        panic!("no existing domain found in .{tld}");
    }

    #[test]
    fn root_refers_to_tld_with_glue() {
        let u = universe();
        let root = ServerRole::Root { index: 0 }.address();
        let q = Question::new("example.com".parse().unwrap(), RecordType::A);
        let resp = u.respond(root, &q).unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.authoritative);
        assert!(!resp.authorities.is_empty());
        assert_eq!(resp.authorities.len(), resp.additionals.len());
        // Every NS has matching glue.
        for rec in &resp.authorities {
            assert_eq!(rec.rtype, RecordType::NS);
            assert_eq!(rec.name, "com".parse::<Name>().unwrap());
        }
    }

    #[test]
    fn root_nxdomain_for_unknown_tld() {
        let u = universe();
        let root = ServerRole::Root { index: 3 }.address();
        let q = Question::new("example.nosuchtld0".parse().unwrap(), RecordType::A);
        let resp = u.respond(root, &q).unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities[0].rtype, RecordType::SOA);
    }

    #[test]
    fn full_referral_chain_resolves_a_query() {
        let u = universe();
        let base = existing_domain(&u, "com");
        let q = Question::new(base.clone(), RecordType::A);

        // Hop 1: root.
        let root_resp = u
            .respond(ServerRole::Root { index: 0 }.address(), &q)
            .unwrap();
        let tld_glue = match &root_resp.additionals[0].rdata {
            RData::A(a) => *a,
            other => panic!("{other:?}"),
        };
        // Hop 2: TLD.
        let tld_resp = u.respond(tld_glue, &q).unwrap();
        assert!(!tld_resp.authoritative);
        assert!(!tld_resp.authorities.is_empty(), "TLD must refer");
        let profile = u.domain_profile(&base);
        if profile.glueless {
            assert!(tld_resp.additionals.is_empty());
            return; // glueless path exercised elsewhere
        }
        let auth_glue = match &tld_resp.additionals[0].rdata {
            RData::A(a) => *a,
            other => panic!("{other:?}"),
        };
        // Hop 3: provider authoritative server.
        let auth_resp = u.respond(auth_glue, &q).unwrap();
        if profile.lame_ns == Some(0) {
            assert_eq!(auth_resp.rcode, Rcode::Refused);
        } else {
            assert_eq!(auth_resp.rcode, Rcode::NoError);
            assert!(auth_resp.authoritative);
            assert_eq!(auth_resp.answers[0].rdata, RData::A(profile.apex_a));
        }
    }

    #[test]
    fn ptr_chain_resolves() {
        let u = universe();
        // Find an IP with a PTR record.
        let ip = (0..u32::MAX)
            .map(|i| Ipv4Addr::from(0x0800_0000u32.wrapping_add(i * 7919)))
            .find(|&ip| u.ptr_exists(ip))
            .unwrap();
        let qname = Name::reverse_ipv4(ip);
        let q = Question::new(qname.clone(), RecordType::PTR);

        let root_resp = u
            .respond(ServerRole::Root { index: 0 }.address(), &q)
            .unwrap();
        // root refers to arpa TLD servers.
        let arpa_ip = match &root_resp.additionals[0].rdata {
            RData::A(a) => *a,
            other => panic!("{other:?}"),
        };
        let arpa_resp = u.respond(arpa_ip, &q).unwrap();
        let rdns8_ip = match &arpa_resp.additionals[0].rdata {
            RData::A(a) => *a,
            other => panic!("{other:?}"),
        };
        let rdns8_resp = u.respond(rdns8_ip, &q).unwrap();
        let rdns16_ip = match &rdns8_resp.additionals[0].rdata {
            RData::A(a) => *a,
            other => panic!("{other:?}"),
        };
        let mut final_resp = u.respond(rdns16_ip, &q).unwrap();
        if !final_resp.authoritative {
            // Most /16 operators delegate at /24: one more hop.
            let rdns24_ip = match &final_resp.additionals[0].rdata {
                RData::A(a) => *a,
                other => panic!("{other:?}"),
            };
            final_resp = u.respond(rdns24_ip, &q).unwrap();
        }
        assert_eq!(final_resp.rcode, Rcode::NoError);
        assert_eq!(final_resp.answers[0].rtype, RecordType::PTR);
        assert_eq!(final_resp.answers[0].rdata, RData::Ptr(u.ptr_name(ip)));
    }

    #[test]
    fn ptr_absent_is_nxdomain() {
        let u = universe();
        let ip = (0..u32::MAX)
            .map(|i| Ipv4Addr::from(0x0900_0000u32.wrapping_add(i * 104729)))
            .find(|&ip| !is_reserved(ip) && !u.ptr_exists(ip))
            .unwrap();
        let q = Question::new(Name::reverse_ipv4(ip), RecordType::PTR);
        let o = ip.octets();
        let server = if u.rdns16_delegates_deeper(o[0], o[1]) {
            ServerRole::Rdns24 {
                a: o[0],
                b: o[1],
                c: o[2],
            }
            .address()
        } else {
            ServerRole::Rdns16 {
                a: o[0],
                b: o[1],
                server: 0,
            }
            .address()
        };
        let resp = u.respond(server, &q).unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn nonexistent_domain_is_tld_nxdomain() {
        let u = universe();
        let name: Name = (0..10_000)
            .map(|i| format!("missing{i}.com").parse::<Name>().unwrap())
            .find(|n| !u.domain_exists(n))
            .unwrap_or_else(|| "definitely-missing-xyzzy.com".parse().unwrap());
        if u.domain_exists(&name) {
            return; // astronomically unlikely; fine
        }
        let tld = u.tlds().by_label("com").unwrap();
        let server = ServerRole::Tld {
            tld_index: tld.index,
            server: 0,
        }
        .address();
        let q = Question::new(name, RecordType::A);
        let resp = u.respond(server, &q).unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn provider_ns_hostnames_resolve_coherently() {
        let u = universe();
        // Glue addresses from a TLD referral must match what the provider's
        // own authoritative servers answer for the same hostname.
        let base = existing_domain(&u, "net");
        let profile = u.domain_profile(&base);
        let provider = u.providers().by_index(profile.provider).unwrap();
        let ns_host: Name = u
            .providers()
            .ns_hostname(provider.index, 0)
            .parse()
            .unwrap();
        // Ask a (non-lame) server of the provider hosting its own domain.
        let ns_domain: Name = u.providers().ns_domain(provider.index).parse().unwrap();
        let own_profile = u.domain_profile(&ns_domain);
        let k = (0..provider.ns_count)
            .find(|&k| own_profile.lame_ns != Some(k))
            .unwrap();
        let server = ServerRole::ProviderAuth {
            provider: provider.index,
            server: k,
        }
        .address();
        let q = Question::new(ns_host, RecordType::A);
        let resp = u.respond(server, &q).unwrap();
        assert_eq!(resp.rcode, Rcode::NoError, "{resp:?}");
        assert_eq!(
            resp.answers[0].rdata,
            RData::A(
                ServerRole::ProviderAuth {
                    provider: provider.index,
                    server: 0
                }
                .address()
            )
        );
    }

    #[test]
    fn domain_existence_rate_near_config() {
        let u = universe();
        let n = 20_000;
        let hits = (0..n)
            .filter(|i| u.domain_exists(&format!("d{i}.com").parse().unwrap()))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.70).abs() < 0.02, "{rate}");
    }

    #[test]
    fn caa_rates_match_section6() {
        let u = universe();
        let n = 60_000;
        // Existing .com domains.
        let mut caa_com = 0;
        let mut total_com = 0;
        for i in 0..n {
            let base: Name = format!("c{i}.com").parse().unwrap();
            if u.domain_exists(&base) {
                total_com += 1;
                if !u.domain_profile(&base).caa_records.is_empty() {
                    caa_com += 1;
                }
            }
        }
        let rate_com = caa_com as f64 / total_com as f64;
        assert!((rate_com - 0.0158).abs() < 0.004, "com CAA rate {rate_com}");
        // .pl domains are far more likely to hold CAA.
        let mut caa_pl = 0;
        let mut total_pl = 0;
        for i in 0..n {
            let base: Name = format!("c{i}.pl").parse().unwrap();
            if u.domain_exists(&base) {
                total_pl += 1;
                if !u.domain_profile(&base).caa_records.is_empty() {
                    caa_pl += 1;
                }
            }
        }
        let rate_pl = caa_pl as f64 / total_pl as f64;
        assert!(rate_pl > 0.06, "pl CAA rate {rate_pl}");
    }

    #[test]
    fn flaky_rates_match_section5() {
        let u = universe();
        let n = 200_000;
        let mut flaky = 0;
        let mut deep = 0;
        let mut existing = 0;
        for i in 0..n {
            let base: Name = format!("f{i}.com").parse().unwrap();
            if !u.domain_exists(&base) {
                continue;
            }
            existing += 1;
            match u.domain_profile(&base).flaky {
                Some(f) if f.deep => {
                    deep += 1;
                    flaky += 1;
                }
                Some(_) => flaky += 1,
                None => {}
            }
        }
        let flaky_rate = flaky as f64 / existing as f64;
        let deep_rate = deep as f64 / existing as f64;
        // §5: 0.55% of domains need ≥2 retries on some NS; 0.01% need 10.
        assert!((flaky_rate - 0.0055).abs() < 0.002, "flaky {flaky_rate}");
        assert!(deep_rate < 0.001, "deep {deep_rate}");
    }

    #[test]
    fn namebright_domains_concentrate_deep_flakiness() {
        let u = universe();
        // All namebright-hosted domains come from its own weight; sample
        // domains and check relative deep-flaky rates.
        let mut nb_deep = 0;
        let mut nb_total = 0;
        for i in 0..400_000 {
            let base: Name = format!("nb{i}.com").parse().unwrap();
            if !u.domain_exists(&base) {
                continue;
            }
            let p = u.domain_profile(&base);
            if p.provider == PROVIDER_NAMEBRIGHT {
                nb_total += 1;
                if matches!(p.flaky, Some(f) if f.deep) {
                    nb_deep += 1;
                }
            }
        }
        assert!(nb_total > 100, "sample too small: {nb_total}");
        let rate = nb_deep as f64 / nb_total as f64;
        assert!(rate > 0.005, "namebright deep rate {rate}");
    }

    #[test]
    fn drop_probability_only_for_flaky_ns() {
        let u = universe();
        // Find a flaky domain.
        for i in 0..400_000 {
            let base: Name = format!("f{i}.com").parse().unwrap();
            if !u.domain_exists(&base) {
                continue;
            }
            let p = u.domain_profile(&base);
            if let Some(f) = p.flaky {
                let flaky_server = ServerRole::ProviderAuth {
                    provider: p.provider,
                    server: f.ns_index,
                }
                .address();
                let other_server = ServerRole::ProviderAuth {
                    provider: p.provider,
                    server: (f.ns_index + 1) % p.ns_count,
                }
                .address();
                assert!(u.drop_probability(flaky_server, &base) > 0.0);
                assert_eq!(u.drop_probability(other_server, &base), 0.0);
                return;
            }
        }
        panic!("no flaky domain found");
    }

    #[test]
    fn thirteen_root_hints() {
        let u = universe();
        let hints = u.root_hints();
        assert_eq!(hints.len(), 13);
        assert_eq!(hints[0].0.to_string(), "a.root-servers.net");
        assert_eq!(hints[12].0.to_string(), "m.root-servers.net");
    }

    #[test]
    fn responses_are_deterministic() {
        let u1 = universe();
        let u2 = universe();
        let q = Question::new("determinism.org".parse().unwrap(), RecordType::A);
        for server in [
            ServerRole::Root { index: 0 }.address(),
            ServerRole::Tld {
                tld_index: 2,
                server: 0,
            }
            .address(),
        ] {
            assert_eq!(u1.respond(server, &q), u2.respond(server, &q));
        }
    }
}
