//! # zdns-zones
//!
//! The authoritative side of the simulated Internet the ZDNS reproduction
//! scans: explicit [`zone::Zone`]s with full RFC semantics for tests and
//! loopback servers, and the procedural [`synth::SyntheticUniverse`] that
//! models 93M base domains, 1702 TLDs (Table 3), the IPv4 reverse tree, and
//! the §5/§6 case-study populations in O(1) memory.

#![warn(missing_docs)]

pub mod addressing;
pub mod hashing;
pub mod providers;
pub mod synth;
pub mod tlds;
pub mod universe;
pub mod zone;

pub use addressing::ServerRole;
pub use synth::{DomainProfile, SynthConfig, SyntheticUniverse};
pub use universe::{AuthResponse, ExplicitUniverse, LatencyClass, ServerProfile, Universe};
pub use zone::{Zone, ZoneAnswer};
