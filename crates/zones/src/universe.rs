//! The `Universe` abstraction: everything the simulator needs to know about
//! the authoritative side of the DNS, with the network itself factored out.
//!
//! A universe answers "what would the server at this IP say to this
//! question?" plus per-server behavioural metadata (latency class, drop
//! probability). The discrete-event simulator in `zdns-netsim` turns those
//! answers into packets, delays, and losses.

use std::net::Ipv4Addr;

use zdns_wire::{Message, MessageView, Name, Question, Rcode, Record};

use crate::zone::{Zone, ZoneAnswer};

/// What an authoritative server would respond, before transport concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthResponse {
    /// Response code.
    pub rcode: Rcode,
    /// Whether the AA bit is set.
    pub authoritative: bool,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS for referrals, SOA for negatives).
    pub authorities: Vec<Record>,
    /// Additional section (glue).
    pub additionals: Vec<Record>,
}

impl AuthResponse {
    /// An empty authoritative NOERROR (NODATA without SOA).
    pub fn empty() -> AuthResponse {
        AuthResponse {
            rcode: Rcode::NoError,
            authoritative: true,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A REFUSED response — what lame servers send.
    pub fn refused() -> AuthResponse {
        AuthResponse {
            rcode: Rcode::Refused,
            authoritative: false,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A SERVFAIL response.
    pub fn servfail() -> AuthResponse {
        AuthResponse {
            rcode: Rcode::ServFail,
            authoritative: false,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build from a [`ZoneAnswer`], the shared authoritative semantics.
    pub fn from_zone_answer(answer: ZoneAnswer) -> AuthResponse {
        match answer {
            ZoneAnswer::Answer { records } => AuthResponse {
                rcode: Rcode::NoError,
                authoritative: true,
                answers: records,
                authorities: Vec::new(),
                additionals: Vec::new(),
            },
            ZoneAnswer::Cname { chain, .. } => AuthResponse {
                // The server returns what it has; the resolver restarts on
                // the out-of-zone target.
                rcode: Rcode::NoError,
                authoritative: true,
                answers: chain,
                authorities: Vec::new(),
                additionals: Vec::new(),
            },
            ZoneAnswer::Referral { ns, glue, .. } => AuthResponse {
                rcode: Rcode::NoError,
                authoritative: false,
                answers: Vec::new(),
                authorities: ns,
                additionals: glue,
            },
            ZoneAnswer::NxDomain { soa } => AuthResponse {
                rcode: Rcode::NxDomain,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            },
            ZoneAnswer::NoData { soa } => AuthResponse {
                rcode: Rcode::NoError,
                authoritative: true,
                answers: Vec::new(),
                authorities: vec![soa],
                additionals: Vec::new(),
            },
            ZoneAnswer::NotInZone => AuthResponse::refused(),
        }
    }

    /// Like [`AuthResponse::to_message`] but answering a borrowed query
    /// view — what the loopback wire servers use so the query is never
    /// promoted to an owned [`Message`].
    pub fn to_message_for(&self, query: &MessageView<'_>) -> Message {
        let mut m = Message {
            id: query.id(),
            questions: query.questions().map(|q| q.to_question()).collect(),
            answers: self.answers.clone(),
            authorities: self.authorities.clone(),
            additionals: self.additionals.clone(),
            edns: query.has_edns().then(zdns_wire::Edns::default),
            ..Message::default()
        };
        m.flags.response = true;
        m.flags.authoritative = self.authoritative;
        m.flags.recursion_desired = query.flags().recursion_desired;
        m.flags.recursion_available = false;
        m.rcode = zdns_wire::RcodeField(self.rcode);
        m
    }

    /// Render into a wire [`Message`] answering `query`.
    pub fn to_message(&self, query: &Message) -> Message {
        let mut m = Message {
            id: query.id,
            questions: query.questions.clone(),
            answers: self.answers.clone(),
            authorities: self.authorities.clone(),
            additionals: self.additionals.clone(),
            edns: query.edns.as_ref().map(|_| zdns_wire::Edns::default()),
            ..Message::default()
        };
        m.flags.response = true;
        m.flags.authoritative = self.authoritative;
        m.flags.recursion_desired = query.flags.recursion_desired;
        m.flags.recursion_available = false;
        m.rcode = zdns_wire::RcodeField(self.rcode);
        m
    }
}

/// Coarse latency classes for servers; the simulator samples concrete RTTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// Anycast / CDN-grade: ~10-40 ms.
    Fast,
    /// Typical hosting: ~40-120 ms.
    Medium,
    /// Distant or overloaded: ~120-400 ms.
    Slow,
}

/// Behavioural metadata for one server.
#[derive(Debug, Clone, Copy)]
pub struct ServerProfile {
    /// Latency class for RTT sampling.
    pub latency: LatencyClass,
    /// Baseline probability that a query to this server is silently
    /// dropped (before any per-domain blocking).
    pub base_drop: f64,
    /// Server-side processing time in microseconds.
    pub processing_us: u64,
}

impl Default for ServerProfile {
    fn default() -> Self {
        ServerProfile {
            latency: LatencyClass::Medium,
            base_drop: 0.005,
            processing_us: 100,
        }
    }
}

/// The authoritative side of a simulated Internet.
pub trait Universe: Send + Sync {
    /// What the server at `server` answers to `question`; `None` means no
    /// server listens there (the packet disappears).
    fn respond(&self, server: Ipv4Addr, question: &Question) -> Option<AuthResponse>;

    /// Behavioural profile of the server at `server`.
    fn server_profile(&self, server: Ipv4Addr) -> ServerProfile;

    /// Probability that this specific (server, qname) query is dropped —
    /// the §5 per-domain "probabilistic blocking" hook. Combined by the
    /// simulator with the profile's `base_drop`.
    fn drop_probability(&self, _server: Ipv4Addr, _qname: &Name) -> f64 {
        0.0
    }

    /// Root name-server hints: (host name, address) pairs.
    fn root_hints(&self) -> Vec<(Name, Ipv4Addr)>;
}

/// A universe assembled from explicit [`Zone`]s — used by unit tests and the
/// real-socket loopback servers.
#[derive(Default)]
pub struct ExplicitUniverse {
    servers: Vec<(Ipv4Addr, Vec<Zone>)>,
    hints: Vec<(Name, Ipv4Addr)>,
}

impl ExplicitUniverse {
    /// Empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host `zone` on `server`.
    pub fn host(&mut self, server: Ipv4Addr, zone: Zone) {
        if let Some((_, zones)) = self.servers.iter_mut().find(|(ip, _)| *ip == server) {
            zones.push(zone);
        } else {
            self.servers.push((server, vec![zone]));
        }
    }

    /// Declare a root hint.
    pub fn hint(&mut self, name: Name, addr: Ipv4Addr) {
        self.hints.push((name, addr));
    }

    /// The zones hosted at `server` (empty if none).
    pub fn zones_at(&self, server: Ipv4Addr) -> &[Zone] {
        self.servers
            .iter()
            .find(|(ip, _)| *ip == server)
            .map(|(_, z)| z.as_slice())
            .unwrap_or(&[])
    }
}

impl Universe for ExplicitUniverse {
    fn respond(&self, server: Ipv4Addr, question: &Question) -> Option<AuthResponse> {
        let zones = self
            .servers
            .iter()
            .find(|(ip, _)| *ip == server)
            .map(|(_, z)| z)?;
        // Deepest zone whose origin encloses the qname wins.
        let best = zones
            .iter()
            .filter(|z| question.name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().label_count());
        Some(match best {
            Some(zone) => {
                AuthResponse::from_zone_answer(zone.lookup(&question.name, question.qtype))
            }
            None => AuthResponse::refused(),
        })
    }

    fn server_profile(&self, _server: Ipv4Addr) -> ServerProfile {
        ServerProfile::default()
    }

    fn root_hints(&self) -> Vec<(Name, Ipv4Addr)> {
        self.hints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{RData, RecordType};

    #[test]
    fn explicit_universe_routes_to_deepest_zone() {
        let mut u = ExplicitUniverse::new();
        let ip = Ipv4Addr::new(127, 0, 0, 1);
        let mut parent = Zone::new(
            "example".parse().unwrap(),
            "ns.example".parse().unwrap(),
            300,
        );
        parent.delegate(
            "sub.example".parse().unwrap(),
            &["ns.sub.example".parse().unwrap()],
            &[],
        );
        let mut child = Zone::new(
            "sub.example".parse().unwrap(),
            "ns.sub.example".parse().unwrap(),
            300,
        );
        child.add(Record::new(
            "www.sub.example".parse().unwrap(),
            300,
            RData::A("10.0.0.1".parse().unwrap()),
        ));
        u.host(ip, parent);
        u.host(ip, child);

        let q = Question::new("www.sub.example".parse().unwrap(), RecordType::A);
        let resp = u.respond(ip, &q).unwrap();
        // The child zone answers authoritatively rather than the parent
        // referring.
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.authoritative);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn unknown_server_is_none() {
        let u = ExplicitUniverse::new();
        let q = Question::new("x.test".parse().unwrap(), RecordType::A);
        assert!(u.respond(Ipv4Addr::new(203, 0, 113, 1), &q).is_none());
    }

    #[test]
    fn unrelated_zone_refuses() {
        let mut u = ExplicitUniverse::new();
        let ip = Ipv4Addr::new(127, 0, 0, 2);
        u.host(
            ip,
            Zone::new(
                "example".parse().unwrap(),
                "ns.example".parse().unwrap(),
                300,
            ),
        );
        let q = Question::new("other.test".parse().unwrap(), RecordType::A);
        assert_eq!(u.respond(ip, &q).unwrap().rcode, Rcode::Refused);
    }

    #[test]
    fn response_message_mirrors_query() {
        let resp = AuthResponse::empty();
        let query = Message::query(77, Question::new("q.test".parse().unwrap(), RecordType::A));
        let msg = resp.to_message(&query);
        assert_eq!(msg.id, 77);
        assert!(msg.flags.response);
        assert!(msg.flags.authoritative);
        assert_eq!(msg.questions, query.questions);
    }
}
