//! The top-level-domain registry: 1702 TLDs in the Table 3 category mix,
//! generated deterministically from a seed.

use std::collections::HashMap;

use crate::hashing::{h64, splitmix64};

/// TLD categories as the paper's Table 3 breaks them down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TldCategory {
    /// Legacy generic TLDs (com, net, org, ...): 5 of them, 55% of fqdns.
    LegacyGtld,
    /// New gTLDs: 1211 of them, 6% of fqdns.
    NewGtld,
    /// Country-code TLDs: 486 of them, 39% of fqdns.
    CcTld,
    /// Infrastructure (arpa) — not part of the corpus, needed for PTR.
    Infra,
}

/// One top-level domain.
#[derive(Debug, Clone)]
pub struct Tld {
    /// Index into the registry (stable across runs with the same seed).
    pub index: u16,
    /// The label, e.g. `"com"`.
    pub label: String,
    /// Category.
    pub category: TldCategory,
    /// Number of authoritative servers for the TLD zone.
    pub server_count: u8,
    /// Relative probability that a corpus *base domain* lives here.
    pub domain_weight: f64,
    /// Mean number of fqdns per base domain in this TLD (legacy gTLDs have
    /// deeper namespaces per Table 3: 129.6M fqdns / 45.9M domains ≈ 2.8).
    pub fqdns_per_domain: f64,
}

/// The full TLD registry.
pub struct TldRegistry {
    tlds: Vec<Tld>,
    by_label: HashMap<String, u16>,
    /// Cumulative domain weights for corpus sampling.
    cumulative: Vec<f64>,
}

/// The five legacy gTLDs (Table 3 counts exactly 5).
pub const LEGACY_GTLDS: [&str; 5] = ["com", "net", "org", "info", "biz"];

/// ccTLDs that must exist because the paper's case studies name them:
/// .pl (25% of CAA-enabled cc domains), .vn and .ng (availability
/// inconsistencies, §5).
pub const REQUIRED_CCTLDS: [&str; 12] = [
    "pl", "vn", "ng", "de", "uk", "cn", "ru", "nl", "fr", "br", "jp", "au",
];

impl TldRegistry {
    /// Generate a registry with `n_cc` ccTLDs and `n_ng` new gTLDs
    /// (defaults match Table 3: 486 and 1211).
    pub fn generate(seed: u64, n_cc: usize, n_ng: usize) -> TldRegistry {
        let mut tlds: Vec<Tld> = Vec::with_capacity(5 + n_cc + n_ng + 1);
        // Category shares derived from the exact Table 3 domain counts:
        // 45,865,899 legacy / 41,574,286 cc / 6,094,090 ng of 93,534,275.
        const TOTAL: f64 = 93_534_275.0;
        const LEGACY_SHARE: f64 = 45_865_899.0 / TOTAL;
        const CC_SHARE: f64 = 41_574_286.0 / TOTAL;
        const NG_SHARE: f64 = 6_094_090.0 / TOTAL;
        // Legacy gTLDs: com dominates.
        let legacy_split = [0.72, 0.10, 0.09, 0.05, 0.04];
        for (i, (label, frac)) in LEGACY_GTLDS.iter().zip(legacy_split).enumerate() {
            tlds.push(Tld {
                index: i as u16,
                label: (*label).to_string(),
                category: TldCategory::LegacyGtld,
                server_count: 13,
                domain_weight: LEGACY_SHARE * frac,
                fqdns_per_domain: 2.83,
            });
        }
        // ccTLDs: two-letter labels, Zipf-ish weights.
        let cc_labels = generate_cc_labels(seed, n_cc);
        let zipf_cc = zipf_weights(n_cc, 0.9);
        for (j, label) in cc_labels.into_iter().enumerate() {
            let index = (tlds.len()) as u16;
            tlds.push(Tld {
                index,
                label,
                category: TldCategory::CcTld,
                server_count: 2 + (h64(seed, "cc-servers", &[j as u8]) % 5) as u8,
                domain_weight: CC_SHARE * zipf_cc[j],
                fqdns_per_domain: 2.18,
            });
        }
        // New gTLDs: word-like labels, never colliding with legacy gTLDs
        // or ccTLDs (a duplicate label would hijack by-label lookups).
        let taken: std::collections::HashSet<String> =
            tlds.iter().map(|t| t.label.clone()).collect();
        let ng_labels = generate_ng_labels(seed, n_ng, &taken);
        let zipf_ng = zipf_weights(n_ng, 1.0);
        for (j, label) in ng_labels.into_iter().enumerate() {
            let index = (tlds.len()) as u16;
            tlds.push(Tld {
                index,
                label,
                category: TldCategory::NewGtld,
                server_count: 2 + (h64(seed, "ng-servers", &(j as u32).to_le_bytes()) % 3) as u8,
                domain_weight: NG_SHARE * zipf_ng[j],
                fqdns_per_domain: 2.33,
            });
        }
        // Infrastructure: arpa (serves in-addr.arpa referrals).
        let arpa_index = tlds.len() as u16;
        tlds.push(Tld {
            index: arpa_index,
            label: "arpa".to_string(),
            category: TldCategory::Infra,
            server_count: 6,
            domain_weight: 0.0,
            fqdns_per_domain: 0.0,
        });

        let by_label = tlds
            .iter()
            .map(|t| (t.label.clone(), t.index))
            .collect::<HashMap<_, _>>();
        let mut cumulative = Vec::with_capacity(tlds.len());
        let mut acc = 0.0;
        for t in &tlds {
            acc += t.domain_weight;
            cumulative.push(acc);
        }
        TldRegistry {
            tlds,
            by_label,
            cumulative,
        }
    }

    /// All TLDs.
    pub fn all(&self) -> &[Tld] {
        &self.tlds
    }

    /// Count excluding infrastructure (the paper's 1702).
    pub fn corpus_tld_count(&self) -> usize {
        self.tlds
            .iter()
            .filter(|t| t.category != TldCategory::Infra)
            .count()
    }

    /// Look up by label (case-insensitive).
    pub fn by_label(&self, label: &str) -> Option<&Tld> {
        self.by_label
            .get(&label.to_ascii_lowercase())
            .map(|&i| &self.tlds[i as usize])
    }

    /// Get by index.
    pub fn by_index(&self, index: u16) -> Option<&Tld> {
        self.tlds.get(index as usize)
    }

    /// Sample a TLD according to the corpus domain weights using hash `h`.
    pub fn sample(&self, h: u64) -> &Tld {
        let total = *self.cumulative.last().expect("non-empty");
        let x = crate::hashing::unit(splitmix64(h)) * total;
        let idx = match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        &self.tlds[idx.min(self.tlds.len() - 1)]
    }
}

/// Zipf-like normalized weights: w_i ∝ 1/(i+1)^s.
fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

fn generate_cc_labels(seed: u64, n: usize) -> Vec<String> {
    let mut labels: Vec<String> = REQUIRED_CCTLDS.iter().map(|s| s.to_string()).collect();
    // Fill the rest with deterministic two-letter codes, skipping dupes and
    // the legacy gTLD labels.
    let mut state = splitmix64(seed ^ 0xCC11AB);
    let mut seen: std::collections::HashSet<String> = labels.iter().cloned().collect();
    while labels.len() < n {
        state = splitmix64(state);
        let a = (b'a' + (state % 26) as u8) as char;
        let b = (b'a' + ((state >> 8) % 26) as u8) as char;
        let label: String = [a, b].iter().collect();
        if seen.insert(label.clone()) {
            labels.push(label);
        }
        // 676 combinations bound n; callers should keep n ≤ ~600.
        if seen.len() >= 676 {
            break;
        }
    }
    labels.truncate(n);
    labels
}

fn generate_ng_labels(
    seed: u64,
    n: usize,
    taken: &std::collections::HashSet<String>,
) -> Vec<String> {
    const HEADS: [&str; 16] = [
        "app", "dev", "shop", "web", "cloud", "tech", "store", "site", "online", "digi", "net",
        "zone", "live", "data", "host", "link",
    ];
    const TAILS: [&str; 16] = [
        "", "ly", "io", "hub", "ify", "base", "port", "ware", "lab", "works", "space", "city",
        "land", "wave", "grid", "dom",
    ];
    let mut labels = Vec::with_capacity(n);
    let mut seen = taken.clone();
    seen.insert("arpa".to_string());
    let mut state = splitmix64(seed ^ 0x176BD);
    let mut counter = 0u32;
    while labels.len() < n {
        state = splitmix64(state.wrapping_add(1));
        let head = HEADS[(state % 16) as usize];
        let tail = TAILS[((state >> 8) % 16) as usize];
        let candidate = if seen.contains(&format!("{head}{tail}")) {
            counter += 1;
            format!("{head}{tail}{counter}")
        } else {
            format!("{head}{tail}")
        };
        if candidate.len() >= 3 && seen.insert(candidate.clone()) {
            labels.push(candidate);
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TldRegistry {
        TldRegistry::generate(42, 486, 1211)
    }

    #[test]
    fn table3_counts() {
        let r = registry();
        assert_eq!(r.corpus_tld_count(), 1702);
        let legacy = r
            .all()
            .iter()
            .filter(|t| t.category == TldCategory::LegacyGtld)
            .count();
        let cc = r
            .all()
            .iter()
            .filter(|t| t.category == TldCategory::CcTld)
            .count();
        let ng = r
            .all()
            .iter()
            .filter(|t| t.category == TldCategory::NewGtld)
            .count();
        assert_eq!((legacy, cc, ng), (5, 486, 1211));
    }

    #[test]
    fn required_labels_present() {
        let r = registry();
        for label in LEGACY_GTLDS.iter().chain(REQUIRED_CCTLDS.iter()) {
            assert!(r.by_label(label).is_some(), "missing {label}");
        }
        assert!(r.by_label("arpa").is_some());
        assert!(r.by_label("COM").is_some(), "case-insensitive lookup");
    }

    #[test]
    fn deterministic_across_builds() {
        let a = TldRegistry::generate(7, 100, 200);
        let b = TldRegistry::generate(7, 100, 200);
        assert_eq!(
            a.all().iter().map(|t| &t.label).collect::<Vec<_>>(),
            b.all().iter().map(|t| &t.label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sampling_respects_category_mix() {
        let r = registry();
        let n = 50_000;
        let mut legacy = 0;
        let mut cc = 0;
        let mut ng = 0;
        for i in 0..n {
            match r
                .sample(h64(1, "sample-test", &(i as u32).to_le_bytes()))
                .category
            {
                TldCategory::LegacyGtld => legacy += 1,
                TldCategory::CcTld => cc += 1,
                TldCategory::NewGtld => ng += 1,
                TldCategory::Infra => panic!("sampled arpa"),
            }
        }
        let lf = legacy as f64 / n as f64;
        let cf = cc as f64 / n as f64;
        let nf = ng as f64 / n as f64;
        // Table 3 base-domain shares: 49.0% / 44.4% / 6.5%.
        assert!((lf - 0.490).abs() < 0.02, "legacy {lf}");
        assert!((cf - 0.444).abs() < 0.02, "cc {cf}");
        assert!((nf - 0.065).abs() < 0.02, "ng {nf}");
    }

    #[test]
    fn weights_sum_to_one() {
        let r = registry();
        let total: f64 = r.all().iter().map(|t| t.domain_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn indices_are_stable_identities() {
        let r = registry();
        for (i, t) in r.all().iter().enumerate() {
            assert_eq!(t.index as usize, i);
            assert_eq!(r.by_index(t.index).unwrap().label, t.label);
        }
    }
}
