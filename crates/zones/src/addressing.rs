//! IP address layout of the synthetic Internet.
//!
//! Server roles are encoded in the address itself so the universe can
//! answer "who is 206.13.57.1?" without any lookup table — the same trick
//! that keeps the namespace procedural.
//!
//! ```text
//! 198.41.0.{1..=13}      root servers
//! 199.(i/256).(i%256).j  TLD i, server j            (j ≥ 1)
//! 204.p.j.53             provider p, auth server j
//! 205.a.j.53             reverse /8 zone a.in-addr.arpa, server j (j ≥ 1)
//! 206.a.b.{1,2}          reverse /16 zone b.a.in-addr.arpa servers
//! ```

use std::net::Ipv4Addr;

/// What lives at a synthetic server address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// One of the 13 root servers.
    Root {
        /// 0-based index (a=0 .. m=12).
        index: u8,
    },
    /// A TLD zone server.
    Tld {
        /// TLD registry index.
        tld_index: u16,
        /// 0-based server index within the TLD's fleet.
        server: u8,
    },
    /// A hosting provider's authoritative server.
    ProviderAuth {
        /// Provider registry index.
        provider: u16,
        /// 0-based nameserver index.
        server: u8,
    },
    /// Server for a reverse /8 zone `a.in-addr.arpa`.
    Rdns8 {
        /// The /8 first octet.
        octet: u8,
        /// 0-based server index (0 or 1).
        server: u8,
    },
    /// Server for a reverse /16 zone `b.a.in-addr.arpa`.
    Rdns16 {
        /// First octet of the /16.
        a: u8,
        /// Second octet of the /16.
        b: u8,
        /// 0-based server index (0 or 1).
        server: u8,
    },
    /// Server for a reverse /24 zone `c.b.a.in-addr.arpa` (a minority of
    /// /16 operators delegate this deep; one server per zone).
    Rdns24 {
        /// First octet.
        a: u8,
        /// Second octet.
        b: u8,
        /// Third octet.
        c: u8,
    },
}

impl ServerRole {
    /// The address this role lives at.
    pub fn address(self) -> Ipv4Addr {
        match self {
            ServerRole::Root { index } => Ipv4Addr::new(198, 41, 0, index + 1),
            ServerRole::Tld { tld_index, server } => Ipv4Addr::new(
                199,
                (tld_index >> 8) as u8,
                (tld_index & 0xFF) as u8,
                server + 1,
            ),
            ServerRole::ProviderAuth { provider, server } => {
                Ipv4Addr::new(204, provider as u8, server, 53)
            }
            ServerRole::Rdns8 { octet, server } => Ipv4Addr::new(205, octet, server + 1, 53),
            ServerRole::Rdns16 { a, b, server } => Ipv4Addr::new(206, a, b, server + 1),
            ServerRole::Rdns24 { a, b, c } => Ipv4Addr::new(207, a, b, c),
        }
    }

    /// Decode an address back into a role, if it is a synthetic server.
    pub fn decode(addr: Ipv4Addr) -> Option<ServerRole> {
        let [o1, o2, o3, o4] = addr.octets();
        match o1 {
            198 if o2 == 41 && o3 == 0 && (1..=13).contains(&o4) => {
                Some(ServerRole::Root { index: o4 - 1 })
            }
            199 if o4 >= 1 => Some(ServerRole::Tld {
                tld_index: (o2 as u16) << 8 | o3 as u16,
                server: o4 - 1,
            }),
            204 if o4 == 53 => Some(ServerRole::ProviderAuth {
                provider: o2 as u16,
                server: o3,
            }),
            205 if o4 == 53 && o3 >= 1 => Some(ServerRole::Rdns8 {
                octet: o2,
                server: o3 - 1,
            }),
            206 if (1..=2).contains(&o4) => Some(ServerRole::Rdns16 {
                a: o2,
                b: o3,
                server: o4 - 1,
            }),
            207 => Some(ServerRole::Rdns24 {
                a: o2,
                b: o3,
                c: o4,
            }),
            _ => None,
        }
    }
}

/// True if the address falls in a range the synthetic Internet reserves for
/// infrastructure; host (leaf A-record) addresses must avoid these.
pub fn is_infrastructure_block(addr: Ipv4Addr) -> bool {
    matches!(addr.octets()[0], 198 | 199 | 204 | 205 | 206 | 207)
}

/// True if the address is outside the public, routable IPv4 space (the
/// paper's "3.7B publicly accessible IPv4 addresses" excludes these).
pub fn is_reserved(addr: Ipv4Addr) -> bool {
    let [a, b, ..] = addr.octets();
    match a {
        0 | 10 | 127 => true,
        100 if (64..=127).contains(&b) => true, // 100.64/10 CGNAT
        169 if b == 254 => true,
        172 if (16..=31).contains(&b) => true,
        192 if b == 168 => true,
        192 if b == 0 => true, // 192.0.0/24 + 192.0.2/24 test nets
        198 if b == 18 || b == 19 => true,
        224..=255 => true, // multicast + future + broadcast
        _ => false,
    }
}

/// Map an arbitrary hash to a plausible public host address that avoids
/// both reserved space and the synthetic infrastructure blocks.
pub fn host_address(mut h: u64) -> Ipv4Addr {
    loop {
        let candidate = Ipv4Addr::from((h & 0xFFFF_FFFF) as u32);
        if !is_reserved(candidate) && !is_infrastructure_block(candidate) {
            return candidate;
        }
        h = crate::hashing::splitmix64(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_roundtrip() {
        let roles = [
            ServerRole::Root { index: 0 },
            ServerRole::Root { index: 12 },
            ServerRole::Tld {
                tld_index: 0,
                server: 0,
            },
            ServerRole::Tld {
                tld_index: 1702,
                server: 5,
            },
            ServerRole::ProviderAuth {
                provider: 199,
                server: 3,
            },
            ServerRole::Rdns8 {
                octet: 17,
                server: 1,
            },
            ServerRole::Rdns16 {
                a: 17,
                b: 201,
                server: 0,
            },
            ServerRole::Rdns24 {
                a: 17,
                b: 201,
                c: 5,
            },
        ];
        for role in roles {
            assert_eq!(ServerRole::decode(role.address()), Some(role), "{role:?}");
        }
    }

    #[test]
    fn non_servers_decode_none() {
        for ip in [
            "8.8.8.8",
            "1.1.1.1",
            "93.184.216.34",
            "198.41.0.0",
            "198.41.0.14",
        ] {
            assert_eq!(ServerRole::decode(ip.parse().unwrap()), None, "{ip}");
        }
    }

    #[test]
    fn host_addresses_avoid_infrastructure_and_reserved() {
        for i in 0..10_000u64 {
            let a = host_address(crate::hashing::splitmix64(i));
            assert!(!is_reserved(a), "{a}");
            assert!(!is_infrastructure_block(a), "{a}");
        }
    }

    #[test]
    fn reserved_space_checks() {
        assert!(is_reserved("10.1.2.3".parse().unwrap()));
        assert!(is_reserved("192.168.1.1".parse().unwrap()));
        assert!(is_reserved("224.0.0.1".parse().unwrap()));
        assert!(is_reserved("100.64.0.1".parse().unwrap()));
        assert!(!is_reserved("100.63.0.1".parse().unwrap()));
        assert!(!is_reserved("8.8.8.8".parse().unwrap()));
    }
}
