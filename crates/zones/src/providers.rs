//! DNS hosting providers.
//!
//! The §5 case study's headline findings are provider effects: Cloudflare
//! and GoDaddy each host ~12% of domains and answer consistently; a small
//! registrar ("namebrightdns.com" in the paper) accounts for 31% of the
//! domains whose nameservers need ten retries. The provider registry makes
//! those populations explicit.

use crate::hashing::h64;
use crate::universe::LatencyClass;

/// How reliably a provider's nameservers answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityClass {
    /// Anycast fleets: negligible loss.
    Excellent,
    /// Ordinary hosting: ~0.5% loss.
    Good,
    /// The long tail: a few % loss.
    Poor,
    /// Probabilistic blocking: consecutive queries trip a temporary
    /// timeout, the §5 "temporary probabilistic blocking" behaviour.
    Blocking,
}

/// One DNS hosting provider.
#[derive(Debug, Clone)]
pub struct Provider {
    /// Stable index (also encodes its server IPs).
    pub index: u16,
    /// Provider label used in nameserver hostnames (`ns1.<label>.com`).
    pub label: String,
    /// Number of distinct nameserver hosts.
    pub ns_count: u8,
    /// Share of base domains hosted here.
    pub weight: f64,
    /// Whether all of this provider's nameservers serve identical answers
    /// (§5: >99.99% of domains are consistent; the exceptions concentrate
    /// in inconsistent providers).
    pub consistent: bool,
    /// Reliability.
    pub reliability: ReliabilityClass,
    /// Latency class of its nameservers.
    pub latency: LatencyClass,
}

/// The provider population.
pub struct ProviderRegistry {
    providers: Vec<Provider>,
    cumulative: Vec<f64>,
}

/// Index of the Cloudflare-like anycast provider.
pub const PROVIDER_CLOUDFLARE: u16 = 0;
/// Index of the GoDaddy-like registrar provider.
pub const PROVIDER_GODADDY: u16 = 1;
/// Index of the namebright-like provider with blocking nameservers (§5).
pub const PROVIDER_NAMEBRIGHT: u16 = 2;

impl ProviderRegistry {
    /// Generate `n` providers (`n ≥ 8`, ≤ 250 so indices fit the IP scheme).
    pub fn generate(seed: u64, n: usize) -> ProviderRegistry {
        assert!((8..=250).contains(&n), "provider count must be in 8..=250");
        let mut providers = Vec::with_capacity(n);
        providers.push(Provider {
            index: PROVIDER_CLOUDFLARE,
            label: "cloudflare-dns".into(),
            ns_count: 4,
            weight: 0.12,
            consistent: true,
            reliability: ReliabilityClass::Excellent,
            latency: LatencyClass::Fast,
        });
        providers.push(Provider {
            index: PROVIDER_GODADDY,
            label: "domaincontrol".into(),
            ns_count: 4,
            weight: 0.12,
            consistent: true,
            reliability: ReliabilityClass::Excellent,
            latency: LatencyClass::Fast,
        });
        providers.push(Provider {
            index: PROVIDER_NAMEBRIGHT,
            label: "namebrightdns".into(),
            ns_count: 2,
            weight: 0.002,
            consistent: true,
            reliability: ReliabilityClass::Blocking,
            latency: LatencyClass::Medium,
        });
        // The long tail shares the remaining weight, Zipf-distributed.
        let remaining = 1.0 - 0.12 - 0.12 - 0.002;
        let tail = n - 3;
        let raw: Vec<f64> = (0..tail).map(|i| 1.0 / ((i + 2) as f64)).collect();
        let total: f64 = raw.iter().sum();
        for (j, w) in raw.into_iter().enumerate() {
            let index = (j + 3) as u16;
            let r = h64(seed, "provider-rel", &index.to_le_bytes());
            let reliability = match r % 100 {
                0..=69 => ReliabilityClass::Good,
                70..=94 => ReliabilityClass::Excellent,
                _ => ReliabilityClass::Poor,
            };
            let latency = match (r >> 8) % 100 {
                0..=39 => LatencyClass::Fast,
                40..=84 => LatencyClass::Medium,
                _ => LatencyClass::Slow,
            };
            providers.push(Provider {
                index,
                label: format!("nsprovider{index}"),
                ns_count: 2 + ((r >> 16) % 3) as u8,
                weight: remaining * w / total,
                // §5: response inconsistency is rare; only a sliver of the
                // tail serves inconsistent answers.
                consistent: !(r >> 24).is_multiple_of(1000),
                reliability,
                latency,
            });
        }
        let mut cumulative = Vec::with_capacity(providers.len());
        let mut acc = 0.0;
        for p in &providers {
            acc += p.weight;
            cumulative.push(acc);
        }
        ProviderRegistry {
            providers,
            cumulative,
        }
    }

    /// All providers.
    pub fn all(&self) -> &[Provider] {
        &self.providers
    }

    /// Get by index.
    pub fn by_index(&self, index: u16) -> Option<&Provider> {
        self.providers.get(index as usize)
    }

    /// Sample a provider by hosting weight using hash `h`.
    pub fn sample(&self, h: u64) -> &Provider {
        let total = *self.cumulative.last().expect("non-empty");
        let x = crate::hashing::unit(crate::hashing::splitmix64(h)) * total;
        let idx = match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        &self.providers[idx.min(self.providers.len() - 1)]
    }

    /// The base domain that holds this provider's nameserver host records,
    /// e.g. `cloudflare-dns.com`.
    pub fn ns_domain(&self, index: u16) -> String {
        format!("{}.com", self.providers[index as usize].label)
    }

    /// Hostname of nameserver `k` for provider `index`:
    /// `ns{k+1}.{label}.com`.
    pub fn ns_hostname(&self, index: u16, k: u8) -> String {
        format!("ns{}.{}.com", k + 1, self.providers[index as usize].label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ProviderRegistry {
        ProviderRegistry::generate(42, 200)
    }

    #[test]
    fn headline_providers_present() {
        let r = registry();
        assert_eq!(r.by_index(PROVIDER_CLOUDFLARE).unwrap().weight, 0.12);
        assert_eq!(r.by_index(PROVIDER_GODADDY).unwrap().weight, 0.12);
        assert_eq!(
            r.by_index(PROVIDER_NAMEBRIGHT).unwrap().reliability,
            ReliabilityClass::Blocking
        );
    }

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = registry().all().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn sampling_hits_cloudflare_share() {
        let r = registry();
        let n = 50_000;
        let cf = (0..n)
            .filter(|i: &i32| r.sample(h64(9, "pv", &i.to_le_bytes())).index == PROVIDER_CLOUDFLARE)
            .count();
        let freq = cf as f64 / n as f64;
        assert!((freq - 0.12).abs() < 0.01, "{freq}");
    }

    #[test]
    fn ns_hostnames_shape() {
        let r = registry();
        assert_eq!(
            r.ns_hostname(PROVIDER_CLOUDFLARE, 0),
            "ns1.cloudflare-dns.com"
        );
        assert_eq!(r.ns_domain(PROVIDER_NAMEBRIGHT), "namebrightdns.com");
    }

    #[test]
    fn deterministic() {
        let a = ProviderRegistry::generate(5, 50);
        let b = ProviderRegistry::generate(5, 50);
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn most_providers_consistent() {
        let r = registry();
        let inconsistent = r.all().iter().filter(|p| !p.consistent).count();
        // §5: inconsistency is rare.
        assert!(inconsistent <= 3, "{inconsistent}");
    }
}
