//! Deterministic hashing for procedural content generation.
//!
//! The synthetic Internet derives every fact (does this domain exist? which
//! provider hosts it? does it publish CAA?) from a stable hash of
//! `(seed, facet, subject)`. Two components that ask the same question get
//! the same answer without sharing state, which is what keeps a
//! billions-of-names namespace representable in zero memory.

/// A 64-bit stable hash (FNV-1a core with a splitmix64 finisher for good
/// avalanche behaviour on short inputs).
pub fn h64(seed: u64, facet: &str, subject: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ seed;
    for &b in facet.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0xff;
    h = h.wrapping_mul(FNV_PRIME);
    for &b in subject {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// splitmix64 finisher.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a hash.
pub fn unit(h: u64) -> f64 {
    // 53 mantissa bits of uniformity.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Bernoulli draw: true with probability `p`.
pub fn chance(seed: u64, facet: &str, subject: &[u8], p: f64) -> bool {
    unit(h64(seed, facet, subject)) < p
}

/// Uniform integer in `[0, n)`.
pub fn pick(seed: u64, facet: &str, subject: &[u8], n: usize) -> usize {
    debug_assert!(n > 0);
    (h64(seed, facet, subject) % n as u64) as usize
}

/// Weighted index draw over cumulative weights (ascending, last == total).
pub fn pick_weighted(seed: u64, facet: &str, subject: &[u8], cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let x = unit(h64(seed, facet, subject)) * total;
    match cumulative.binary_search_by(|w| w.partial_cmp(&x).expect("finite weights")) {
        Ok(i) => (i + 1).min(cumulative.len() - 1),
        Err(i) => i.min(cumulative.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(h64(1, "x", b"abc"), h64(1, "x", b"abc"));
        assert_ne!(h64(1, "x", b"abc"), h64(2, "x", b"abc"));
        assert_ne!(h64(1, "x", b"abc"), h64(1, "y", b"abc"));
        assert_ne!(h64(1, "x", b"abc"), h64(1, "x", b"abd"));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let p = 0.3;
        let hits = (0..20_000i32)
            .filter(|i| chance(42, "t", &i.to_le_bytes(), p))
            .count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - p).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn pick_covers_range() {
        let mut seen = [false; 7];
        for i in 0..1000u32 {
            seen[pick(7, "p", &i.to_le_bytes(), 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pick_weighted_respects_weights() {
        // weights 1:3 → second outcome ~75%.
        let cum = [1.0, 4.0];
        let n = 20_000;
        let second = (0..n)
            .filter(|i: &i32| pick_weighted(9, "w", &i.to_le_bytes(), &cum) == 1)
            .count();
        let freq = second as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.02, "freq {freq}");
    }
}
