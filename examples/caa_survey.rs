//! §6 case study in miniature: survey CAA deployment across base domains
//! with the CAALOOKUP module (CNAME chains followed per RFC 8659).
//!
//! ```text
//! cargo run --release --example caa_survey
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use zdns_core::{Resolver, ResolverConfig};
use zdns_modules::{CaaLookupModule, LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::{Engine, EngineConfig};
use zdns_workloads::CtCorpus;
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

fn main() {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));
    let corpus = CtCorpus::new(universe.config().seed, 486, 1211);

    let outputs: Arc<Mutex<Vec<ModuleOutput>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_outputs = Arc::clone(&outputs);
    let sink: ModuleSink = Arc::new(move |o| sink_outputs.lock().push(o));

    let mut engine = Engine::new(
        EngineConfig {
            threads: 512,
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );
    // CAA is rare (~1.7% of domains); scan enough to find holders.
    let mut inputs = corpus.base_domains(30_000);
    let module = CaaLookupModule;
    let r2 = resolver.clone();
    engine.run(move || {
        let domain = inputs.next()?;
        Some(module.make_machine(&domain, &r2, sink.clone()))
    });

    let outputs = outputs.lock();
    let noerror: Vec<_> = outputs
        .iter()
        .filter(|o| o.status == zdns_core::Status::NoError)
        .collect();
    let holders: Vec<_> = noerror
        .iter()
        .filter(|o| o.data["records"].as_array().is_some_and(|a| !a.is_empty()))
        .collect();
    println!(
        "scanned {} domains: {} NOERROR, {} CAA holders ({:.2}%)  [paper: 1.69%]",
        outputs.len(),
        noerror.len(),
        holders.len(),
        holders.len() as f64 / noerror.len().max(1) as f64 * 100.0
    );
    let with_le = holders
        .iter()
        .filter(|o| {
            o.data["issue"].as_array().is_some_and(|a| {
                a.iter()
                    .any(|v| v.as_str().unwrap_or("").contains("letsencrypt"))
            })
        })
        .count();
    println!(
        "Let's Encrypt present in {:.0}% of issue sets  [paper: 92.4%]",
        with_le as f64 / holders.len().max(1) as f64 * 100.0
    );
    let via_cname = holders
        .iter()
        .filter(|o| o.data["via_cname"] == true)
        .count();
    println!("CAA reached through a CNAME chain: {via_cname}  [paper: ~0.7% of holders]");
    let invalid = holders
        .iter()
        .filter(|o| {
            o.data["invalid_tags"]
                .as_array()
                .is_some_and(|a| !a.is_empty())
        })
        .count();
    println!("domains with invalid CAA tags: {invalid}  [paper: 0.04% of holders]");

    if let Some(example) = holders.first() {
        println!("\nexample CAA holder:\n{}", example.to_json());
    }
}
