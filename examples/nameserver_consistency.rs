//! §5 case study in miniature: use the `--all-nameservers` module to probe
//! every authoritative nameserver of a set of domains, measuring
//! per-nameserver availability (retries) and answer consistency.
//!
//! ```text
//! cargo run --release --example nameserver_consistency
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use zdns_core::{Resolver, ResolverConfig};
use zdns_modules::{AllNameserversModule, LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::{Engine, EngineConfig};
use zdns_workloads::CtCorpus;
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

fn main() {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));
    let corpus = CtCorpus::new(universe.config().seed, 486, 1211);
    let module = AllNameserversModule::default();

    let outputs: Arc<Mutex<Vec<ModuleOutput>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_outputs = Arc::clone(&outputs);
    let sink: ModuleSink = Arc::new(move |o| sink_outputs.lock().push(o));

    let mut engine = Engine::new(
        EngineConfig {
            threads: 256,
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );
    let mut inputs = corpus.base_domains(2_000);
    let r2 = resolver.clone();
    engine.run(move || {
        let domain = inputs.next()?;
        Some(module.make_machine(&domain, &r2, sink.clone()))
    });

    let outputs = outputs.lock();
    let resolvable: Vec<_> = outputs.iter().filter(|o| o.status.is_success()).collect();
    let needing_retries = resolvable
        .iter()
        .filter(|o| o.data["max_retries"].as_u64().unwrap_or(0) >= 2)
        .count();
    let inconsistent = resolvable
        .iter()
        .filter(|o| o.data["consistent"] == false)
        .count();

    println!(
        "scanned {} domains ({} resolvable)",
        outputs.len(),
        resolvable.len()
    );
    println!(
        "domains with a nameserver needing >=2 retries: {} ({:.2}%)  [paper: 0.55%]",
        needing_retries,
        needing_retries as f64 / resolvable.len().max(1) as f64 * 100.0
    );
    println!(
        "domains with inconsistent A records across NS: {} ({:.3}%)  [paper: <0.01%]",
        inconsistent,
        inconsistent as f64 / resolvable.len().max(1) as f64 * 100.0
    );

    // Show one interesting lookup in full.
    if let Some(flaky) = resolvable
        .iter()
        .find(|o| o.data["max_retries"].as_u64().unwrap_or(0) >= 2)
    {
        println!("\nexample flaky domain:\n{}", flaky.to_json());
    }
}
