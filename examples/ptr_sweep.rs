//! A miniature of the paper's headline experiment: a PTR sweep over (a
//! sample of) the public IPv4 space with ZDNS's own iterative resolver,
//! reporting rates the way Table 1 does.
//!
//! ```text
//! cargo run --release --example ptr_sweep
//! ```

use std::sync::Arc;

use zdns_core::{Resolver, ResolverConfig};
use zdns_netsim::{Engine, EngineConfig};
use zdns_wire::{Name, Question, RecordType};
use zdns_workloads::{public_ipv4_count, Ipv4Walk};
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

fn main() {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));

    let sample: u64 = 50_000;
    let threads = 4_000;
    let mut engine = Engine::new(
        EngineConfig {
            threads,
            // /28 scanning prefix: 16 source addresses.
            client_ips: (1..=16)
                .map(|i| std::net::Ipv4Addr::new(192, 0, 2, i))
                .collect(),
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );
    let mut ips = Ipv4Walk::new(2024, sample);
    let r2 = resolver.clone();
    let report = engine.run(move || {
        let ip = ips.next()?;
        Some(r2.machine(Question::new(Name::reverse_ipv4(ip), RecordType::PTR), None))
    });

    let rate = report.steady_success_rate();
    let full_space = public_ipv4_count() as f64;
    println!(
        "PTR sweep sample: {} addresses @ {threads} threads",
        report.jobs
    );
    println!(
        "success rate: {:.1}%   (paper, iterative full sweep: 88.5%)",
        report.success_rate() * 100.0
    );
    println!("steady rate:  {rate:.0} lookups/s");
    println!("status breakdown: {:?}", report.status_counts);
    println!(
        "extrapolated full public IPv4 ({:.2}B addresses): {:.1}h  (paper: 116.7h at 50K threads)",
        full_space / 1e9,
        full_space / rate.max(1.0) / 3600.0
    );
    println!(
        "cache: {} entries live, hit rate {:.0}%",
        resolver.core().cache.len(),
        resolver.core().cache.stats.hit_rate() * 100.0
    );
}
