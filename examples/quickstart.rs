//! Quickstart: resolve a handful of names iteratively against the built-in
//! simulated Internet and print ZDNS-style JSON lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use zdns_core::{collecting_sink, Resolver, ResolverConfig};
use zdns_netsim::{Engine, EngineConfig};
use zdns_wire::{Question, RecordType};
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

fn main() {
    // 1. A simulated Internet: 1702 TLDs, ~93M base domains, reverse tree.
    //    Everything is derived from the seed — same seed, same Internet.
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));

    // 2. A resolver in iterative mode: ZDNS's own recursion from the roots,
    //    with the selective NS/glue cache.
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));

    // 3. The discrete-event engine stands in for the network: thousands of
    //    lookup routines, realistic latency/loss, virtual time.
    let mut engine = Engine::new(
        EngineConfig {
            threads: 64,
            wire_fidelity: true, // every packet through the real codec
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );

    // 4. Queue lookups and run. Results stream into the sink.
    let names = [
        "bluefast0.com",
        "cloudtech1.net",
        "www.primedata2.org",
        "shopzen3.pl",
        "missing-name-xyz.com",
    ];
    let (sink, results) = collecting_sink();
    let mut queue = names.iter();
    let r2 = resolver.clone();
    let report = engine.run(move || {
        let name = queue.next()?;
        let question = Question::new(name.parse().expect("valid name"), RecordType::A);
        Some(r2.machine(question, Some(sink.clone())))
    });

    // 5. Print the ZDNS JSON output lines.
    for result in results.lock().iter() {
        println!("{}", result.to_json());
    }
    eprintln!(
        "\n{} lookups, {:.0}% success, {} queries, {:.2}s virtual time, cache hit rate {:.0}%",
        report.jobs,
        report.success_rate() * 100.0,
        report.queries_sent,
        zdns_netsim::as_secs_f64(report.makespan),
        resolver.core().cache.stats.hit_rate() * 100.0,
    );
}
