//! The paper's central operational finding, reproduced as a test: a
//! resolver-side per-client-IP token bucket (Google Public DNS's
//! behaviour — silent drops) crushes an unpaced /32 scan, and the same
//! scan paced under the limiter's budget recovers most of the success
//! rate. The pacer is the identical `zdns_core::Pacer` the real-socket
//! drivers use, plugged into the simulation engine as its send gate —
//! the control loop between observed outcomes and send scheduling,
//! closed under deterministic virtual time.

use std::net::Ipv4Addr;
use std::sync::Arc;

use zdns_core::{Pacer, PacerConfig, Resolver, ResolverConfig};
use zdns_netsim::{
    Engine, EngineConfig, PublicResolverConfig, PublicResolverSim, RunReport, MILLIS,
};
use zdns_wire::{Question, RecordType};
use zdns_zones::{SynthConfig, SyntheticUniverse};

const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
const NAMES: usize = 1_500;
/// The simulated resolver's per-client budget (queries/second).
const LIMIT_QPS: f64 = 100.0;

/// Run one external-mode scan of `NAMES` names against a resolver whose
/// per-client token bucket allows [`LIMIT_QPS`]. Returns the run report
/// and how many queries the limiter silently dropped.
fn scan(pacer: Option<PacerConfig>) -> (RunReport, u64) {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let mut engine = Engine::new(
        EngineConfig {
            threads: NAMES,
            stagger: 200 * MILLIS,
            seed: 11,
            ..EngineConfig::default()
        },
        universe,
    );
    let mut resolver_model = PublicResolverConfig::google(RESOLVER_IP);
    resolver_model.per_client_qps = Some(LIMIT_QPS);
    engine.add_resolver(PublicResolverSim::new(resolver_model));
    if let Some(config) = pacer {
        engine.set_send_gate(Box::new(Pacer::new(config)));
    }

    let mut config = ResolverConfig::external(vec![RESOLVER_IP]);
    config.retries = 1;
    config.timeout = 500 * MILLIS;
    let resolver = Resolver::new(config);
    let mut remaining = NAMES;
    let report = engine.run(move || {
        if remaining == 0 {
            return None;
        }
        remaining -= 1;
        Some(resolver.machine(
            Question::new(
                format!("pol{remaining}.com").parse().unwrap(),
                RecordType::A,
            ),
            None,
        ))
    });
    let rate_limited = engine
        .resolver_stats()
        .iter()
        .map(|(_, limited, _)| *limited)
        .sum();
    (report, rate_limited)
}

#[test]
fn pacing_recovers_success_rate_against_rate_limited_resolver() {
    // Unpaced: 1 500 lookup routines blast the resolver inside ~200ms —
    // two orders of magnitude over the per-client budget. Retries land
    // inside the same starved bucket.
    let (unpaced, unpaced_limited) = scan(None);
    assert_eq!(unpaced.jobs, NAMES as u64);
    assert!(
        unpaced_limited > 1_000,
        "limiter must bite: only {unpaced_limited} drops"
    );
    assert!(
        unpaced.success_rate() < 0.35,
        "unpaced scan should be crushed, got {:.1}%",
        unpaced.success_rate() * 100.0
    );
    assert_eq!(unpaced.paced_deferrals, 0);

    // Paced: same scan, same resolver, global budget below the limiter.
    let (paced, paced_limited) = scan(Some(PacerConfig {
        rate_pps: 80.0,
        ..PacerConfig::default()
    }));
    assert_eq!(paced.jobs, NAMES as u64);
    assert_eq!(paced_limited, 0, "a polite scan never trips the limiter");
    assert!(paced.paced_deferrals > 0, "the gate must actually defer");
    assert!(
        paced.success_rate() > 0.85,
        "paced scan should recover, got {:.1}%",
        paced.success_rate() * 100.0
    );

    // The acceptance bar: ≥ 3× the unpaced success rate — and the cost
    // is time, which is the polite-scanning trade the paper describes.
    assert!(
        paced.success_rate() >= 3.0 * unpaced.success_rate(),
        "paced {:.1}% vs unpaced {:.1}%",
        paced.success_rate() * 100.0,
        unpaced.success_rate() * 100.0
    );
    assert!(paced.makespan > unpaced.makespan);
}

#[test]
fn backoff_throttles_a_destination_that_keeps_timing_out() {
    // A universe where the scanned resolver drops everything: adaptive
    // backoff must grow the gap between attempts so the scan stops
    // hammering a dead/penalizing destination.
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let mut engine = Engine::new(
        EngineConfig {
            threads: 4,
            stagger: 0,
            seed: 3,
            ..EngineConfig::default()
        },
        universe,
    );
    // No resolver model at 8.8.8.8 and no authoritative server either:
    // every query times out.
    engine.set_send_gate(Box::new(Pacer::new(PacerConfig {
        backoff: true,
        ..PacerConfig::default()
    })));
    let mut config = ResolverConfig::external(vec![RESOLVER_IP]);
    config.retries = 3;
    config.timeout = 200 * MILLIS;
    let resolver = Resolver::new(config);
    let mut remaining = 4usize;
    let report = engine.run(move || {
        if remaining == 0 {
            return None;
        }
        remaining -= 1;
        Some(resolver.machine(
            Question::new(
                format!("dead{remaining}.com").parse().unwrap(),
                RecordType::A,
            ),
            None,
        ))
    });
    assert_eq!(report.jobs, 4);
    assert_eq!(report.successes, 0);
    assert!(
        report.paced_deferrals > 0,
        "failure streaks must defer retries"
    );
}
