//! The shared-queue scan pipeline, end to end (companion to
//! `tests/polite_scan.rs`):
//!
//! * **Work stealing / stranded-window recovery** — a loopback scan
//!   where half the destinations are blackholes serving long backoff
//!   penalties. Under the pre-pipeline static split those lookups pin
//!   the admission window; under the shared credit pool they *park*
//!   (returning their credits) and the healthy half of the scan absorbs
//!   the stranded capacity. The acceptance bar is ≥1.5× aggregate
//!   throughput.
//! * **CT-corpus workload** — `--workload ct-corpus` streamed through a
//!   `--real` scan against a loopback server, never materializing the
//!   name set.
//! * **Bounded output backpressure** — a slow sink throttles the scan
//!   instead of growing an unbounded backlog.
//! * **Sim/real convergence** — the simulator drains the same
//!   `InputSource` stream the real pipeline uses.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::Arc;

use zdns::core::AddrMap;
use zdns::framework::{
    run_scan_pipeline, run_sim_scan, Conf, JsonlSink, OutputSink, RealScanReport,
};
use zdns::modules::ModuleRegistry;
use zdns::netsim::{WireServer, MILLIS};
use zdns::wire::Name;
use zdns::workloads::CtCorpus;
use zdns::zones::{ExplicitUniverse, SynthConfig, SyntheticUniverse, Universe, Zone};

/// A loopback server whose root-apex zone authoritatively answers every
/// name (NXDOMAIN counts as a successful lookup).
fn catch_all_server(sim_ip: Ipv4Addr) -> WireServer {
    let zone = Zone::new(Name::root(), "ns1.rootish.test".parse().unwrap(), 300);
    let mut universe = ExplicitUniverse::new();
    universe.host(sim_ip, zone);
    WireServer::start(Arc::new(universe) as Arc<dyn Universe>, sim_ip).unwrap()
}

const HEALTHY_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

/// Sim addresses for destinations that swallow every packet.
fn dead_ips(n: usize) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(203, 0, 113, 100 + i as u8))
        .collect()
}

/// One run of the half-backed-off scenario. Returns the report and the
/// wall-clock seconds the scan took.
fn run_half_dead_scan(static_split: bool) -> (RealScanReport, f64) {
    let healthy = catch_all_server(HEALTHY_IP);
    let dead = dead_ips(5);
    // Blackholes: bound sockets nobody ever reads — sends succeed, no
    // ICMP error comes back, every query to them times out.
    let blackholes: Vec<UdpSocket> = dead
        .iter()
        .map(|_| UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap())
        .collect();
    let mut mapping: Vec<(Ipv4Addr, SocketAddr)> = vec![(HEALTHY_IP, healthy.addr())];
    for (sim, sock) in dead.iter().zip(&blackholes) {
        mapping.push((*sim, sock.local_addr().unwrap()));
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .expect("every probe targets a mapped server")
    });

    // 60 lookups at destinations in deep backoff, 20 healthy, over a
    // 16-credit window and (up to) 2 workers. A constant 1s penalty
    // (base == cap) keeps the scenario deterministic: every dead retry
    // parks for exactly 1s while holding the wire for only ~240ms total.
    let mut args = vec![
        "PROBE".to_string(),
        "--threads".into(),
        "2".into(),
        "--max-in-flight".into(),
        "16".into(),
        "--retries".into(),
        "1".into(),
        "--backoff-base".into(),
        "1".into(),
        "--backoff-cap".into(),
        "1".into(),
    ];
    if static_split {
        args.push("--static-split".into());
    }
    let mut conf = Conf::parse(args).unwrap();
    conf.resolver.timeout = 120 * MILLIS;
    let resolver = zdns::core::Resolver::new(conf.resolver.clone());
    let module = ModuleRegistry::standard().get("PROBE").unwrap();

    let inputs: Vec<String> = (0..80)
        .map(|i| {
            if i % 4 == 3 {
                format!("ok{i}.pipeline.test@{HEALTHY_IP}")
            } else {
                format!("dead{i}.pipeline.test@{}", dead[i % dead.len()])
            }
        })
        .collect();

    let started = std::time::Instant::now();
    let mut source = inputs.into_iter();
    let mut sink = zdns::framework::CallbackSink::new(|_| {});
    let report = run_scan_pipeline(&conf, &resolver, module, addr_map, &mut source, &mut sink);
    let elapsed = started.elapsed().as_secs_f64();
    drop(healthy);
    (report, elapsed)
}

#[test]
fn shared_queue_absorbs_stranded_window_from_backed_off_destinations() {
    let (static_report, static_secs) = run_half_dead_scan(true);
    let (shared_report, shared_secs) = run_half_dead_scan(false);

    // Both modes complete the whole scan and agree on outcomes: healthy
    // probes answer (NXDOMAIN from the catch-all zone = success), dead
    // destinations time out.
    for (label, report) in [("static", &static_report), ("shared", &shared_report)] {
        assert_eq!(report.lookups, 80, "{label}: {:?}", report.worker_errors);
        assert_eq!(
            report.status_counts.get("TIMEOUT").copied().unwrap_or(0),
            60,
            "{label}: {:?}",
            report.status_counts
        );
        assert_eq!(report.successes, 20, "{label}");
        assert!(
            report.driver.queries_deferred > 0,
            "{label}: backoff must defer retries"
        );
    }

    // The static split holds every backed-off lookup inside its worker's
    // window slice; the shared pool parks them. Telemetry first:
    assert_eq!(static_report.driver.credit_leases, 0, "no pool when split");
    assert!(
        shared_report.driver.credit_leases > 0,
        "shared mode leases admission credits"
    );
    assert!(
        shared_report.driver.idle_credit_returns > 0,
        "fully-backed-off lookups must park and return their credits: {:?}",
        shared_report.driver
    );
    if shared_report.workers >= 2 {
        assert!(
            shared_report.driver.inputs_stolen > 0,
            "some worker must admit beyond its static fair share"
        );
    }
    let line = shared_report.summary_line();
    assert!(
        line.contains("credit leases"),
        "the --real summary must print the lease telemetry: {line}"
    );

    // The acceptance bar: ≥1.5× aggregate throughput when half the
    // window would otherwise be stranded (measured ~2.5-3.5×; 1.5 leaves
    // slack for noisy shared runners).
    let static_rate = 80.0 / static_secs;
    let shared_rate = 80.0 / shared_secs;
    assert!(
        shared_rate >= 1.5 * static_rate,
        "shared-queue pipeline must absorb the stranded window: \
         shared {shared_rate:.1}/s vs static {static_rate:.1}/s \
         ({static_secs:.2}s vs {shared_secs:.2}s)"
    );
}

#[test]
fn ct_corpus_workload_streams_through_real_scan_on_loopback() {
    let server_ip = Ipv4Addr::new(203, 0, 113, 42);
    let server = catch_all_server(server_ip);
    let real = server.addr();
    let addr_map: Arc<AddrMap> = Arc::new(move |_| real);

    let conf = Conf::parse([
        "A",
        "--name-servers",
        "203.0.113.42",
        "--threads",
        "2",
        "--max-in-flight",
        "64",
        "--workload",
        "ct-corpus",
        "--max-names",
        "300",
        "--retries",
        "2",
    ])
    .unwrap();
    assert_eq!(conf.workload, zdns::framework::Workload::CtCorpus);
    let resolver = zdns::core::Resolver::new(conf.resolver.clone());
    let module = ModuleRegistry::standard().get("A").unwrap();

    // The exact source the CLI builds for `--workload ct-corpus`:
    // generated, streaming, never materialized.
    let mut source = CtCorpus::new(conf.seed, 486, 1211).into_stream(conf.max_names as u64);
    let mut sink = JsonlSink::new(Vec::new(), conf.output);
    let report = run_scan_pipeline(&conf, &resolver, module, addr_map, &mut source, &mut sink);

    assert_eq!(report.lookups, 300, "{:?}", report.worker_errors);
    assert_eq!(
        report.status_counts.get("NXDOMAIN").copied().unwrap_or(0),
        300,
        "the catch-all zone answers every corpus name authoritatively: {:?}",
        report.status_counts
    );
    assert_eq!(sink.outputs_written(), 300);
    assert_eq!(report.sink_errors, 0);
    let bytes = sink.into_inner();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 300);
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert_eq!(v["status"], "NXDOMAIN");
        assert!(v["name"].is_string());
    }
    drop(server);
}

#[test]
fn slow_sink_backpressure_bounds_the_output_queue() {
    let server_ip = Ipv4Addr::new(203, 0, 113, 43);
    let server = catch_all_server(server_ip);
    let real = server.addr();
    let addr_map: Arc<AddrMap> = Arc::new(move |_| real);

    let conf = Conf::parse([
        "A",
        "--name-servers",
        "203.0.113.43",
        "--threads",
        "2",
        "--max-in-flight",
        "32",
        "--retries",
        "2",
    ])
    .unwrap();
    let resolver = zdns::core::Resolver::new(conf.resolver.clone());
    let module = ModuleRegistry::standard().get("A").unwrap();

    let mut source = (0..200).map(|i| format!("slow{i}.sink.test"));
    // A sink an order of magnitude slower than the lookups.
    let mut sink = zdns::framework::CallbackSink::new(|_| {
        std::thread::sleep(std::time::Duration::from_micros(500));
    });
    let report = run_scan_pipeline(&conf, &resolver, module, addr_map, &mut source, &mut sink);

    assert_eq!(report.lookups, 200, "{:?}", report.worker_errors);
    // The queue is bounded at (2 * window).max(64) = 64: however slow
    // the sink, outstanding outputs (queued + the one in the writer's
    // hand) can never exceed the cap + 1.
    assert!(
        report.peak_output_queue <= 65,
        "bounded queue violated: peak {}",
        report.peak_output_queue
    );
    assert!(report.peak_output_queue > 0);
    drop(server);
}

#[test]
fn sim_scan_drains_the_same_input_source_stream() {
    let conf = Conf::parse(["A", "--name-servers", "8.8.8.8", "--threads", "64"]).unwrap();
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let module = ModuleRegistry::standard().get("A").unwrap();
    // The identical generator type the real pipeline consumed above.
    let source = CtCorpus::new(7, 486, 1211).into_stream(250);
    let outputs = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let o2 = Arc::clone(&outputs);
    let report = run_sim_scan(&conf, universe, module, source, move |_| {
        o2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(report.jobs, 250);
    assert_eq!(outputs.load(std::sync::atomic::Ordering::Relaxed), 250);
}
