//! Framework-level real-socket scan: worker threads with long-lived UDP
//! sockets driving module machines against loopback wire servers.

use std::net::{Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zdns::core::AddrMap;
use zdns::framework::{resolver_for, run_real_scan, Conf};
use zdns::modules::ModuleRegistry;
use zdns::netsim::WireServer;
use zdns::wire::{Name, RData, Record};
use zdns::zones::{ExplicitUniverse, Universe, Zone};

fn build_universe() -> ExplicitUniverse {
    let root_ip: Ipv4Addr = "198.41.0.1".parse().unwrap();
    let tld_ip: Ipv4Addr = "199.0.0.1".parse().unwrap();
    let leaf_ip: Ipv4Addr = "204.10.0.53".parse().unwrap();

    let mut root = Zone::new(Name::root(), "a.root.test".parse().unwrap(), 518400);
    root.delegate(
        "test".parse().unwrap(),
        &["ns1.nic.test".parse().unwrap()],
        &[("ns1.nic.test".parse().unwrap(), RData::A(tld_ip))],
    );
    let mut tld = Zone::new(
        "test".parse().unwrap(),
        "ns1.nic.test".parse().unwrap(),
        900,
    );
    let mut universe = ExplicitUniverse::new();
    let mut leaf_zones = Vec::new();
    for i in 0..20 {
        let apex: Name = format!("scan{i}.test").parse().unwrap();
        tld.delegate(
            apex.clone(),
            &[format!("ns1.scan{i}.test").parse().unwrap()],
            &[(
                format!("ns1.scan{i}.test").parse().unwrap(),
                RData::A(leaf_ip),
            )],
        );
        let mut zone = Zone::new(
            apex.clone(),
            format!("ns1.scan{i}.test").parse().unwrap(),
            300,
        );
        zone.add(Record::new(
            apex,
            300,
            RData::A(format!("192.0.2.{}", i + 1).parse().unwrap()),
        ));
        leaf_zones.push(zone);
    }
    universe.hint("a.root.test".parse().unwrap(), root_ip);
    universe.host(root_ip, root);
    universe.host(tld_ip, tld);
    for zone in leaf_zones {
        universe.host(leaf_ip, zone);
    }
    universe
}

#[test]
fn real_scan_resolves_through_loopback_servers() {
    let universe = Arc::new(build_universe());
    let ips: Vec<Ipv4Addr> = ["198.41.0.1", "199.0.0.1", "204.10.0.53"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut servers = Vec::new();
    let mut mapping: Vec<(Ipv4Addr, SocketAddr)> = Vec::new();
    for ip in ips {
        let server = WireServer::start(Arc::clone(&universe) as Arc<dyn Universe>, ip).unwrap();
        mapping.push((ip, server.addr()));
        servers.push(server);
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .unwrap_or_else(|| SocketAddr::new(ip.into(), 53))
    });

    let mut conf = Conf::parse(["A", "--iterative", "--threads", "8", "--retries", "2"]).unwrap();
    conf.resolver.timeout = zdns::netsim::SECONDS;
    conf.resolver.iteration_timeout = zdns::netsim::SECONDS;
    let resolver = resolver_for(&conf, universe.as_ref());
    let module = ModuleRegistry::standard().get("A").unwrap();
    let inputs: Vec<String> = (0..20).map(|i| format!("scan{i}.test")).collect();

    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = Arc::clone(&ok);
    let report = run_real_scan(
        &conf,
        &resolver,
        module,
        addr_map,
        inputs.into_iter(),
        move |o| {
            if o.status.is_success() {
                ok2.fetch_add(1, Ordering::Relaxed);
            }
        },
    );
    assert_eq!(report.lookups, 20);
    assert_eq!(report.successes, 20, "all loopback scans succeed");
    assert_eq!(ok.load(Ordering::Relaxed), 20);

    // RunReport parity: per-status counts, query/retry totals, rates, and
    // reactor telemetry all populate.
    assert_eq!(report.status_counts.get("NOERROR"), Some(&20));
    assert!(
        report.queries_sent >= 20,
        "iterative walks send multiple queries: {}",
        report.queries_sent
    );
    assert!(report.lookups_per_sec() > 0.0);
    assert!((report.success_rate() - 1.0).abs() < f64::EPSILON);
    assert!(
        report.worker_errors.is_empty(),
        "{:?}",
        report.worker_errors
    );
    assert!(report.workers >= 1 && report.workers <= 8);
    assert!(report.driver.peak_in_flight >= 1);
    assert_eq!(report.driver.completed, 20);
    let line = report.summary_line();
    assert!(line.contains("20 lookups"), "{line}");
    assert!(line.contains("NOERROR=20"), "{line}");
}

#[test]
fn real_scan_respects_max_in_flight_window() {
    let universe = Arc::new(build_universe());
    let ips: Vec<Ipv4Addr> = ["198.41.0.1", "199.0.0.1", "204.10.0.53"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut servers = Vec::new();
    let mut mapping: Vec<(Ipv4Addr, SocketAddr)> = Vec::new();
    for ip in ips {
        let server = WireServer::start(Arc::clone(&universe) as Arc<dyn Universe>, ip).unwrap();
        mapping.push((ip, server.addr()));
        servers.push(server);
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .unwrap_or_else(|| SocketAddr::new(ip.into(), 53))
    });

    // A window of 1 forces strictly sequential admission — the scan still
    // completes, it just cannot overlap lookups.
    let mut conf = Conf::parse([
        "A",
        "--iterative",
        "--threads",
        "1",
        "--retries",
        "2",
        "--max-in-flight",
        "1",
    ])
    .unwrap();
    conf.resolver.timeout = zdns::netsim::SECONDS;
    conf.resolver.iteration_timeout = zdns::netsim::SECONDS;
    let resolver = resolver_for(&conf, universe.as_ref());
    let module = ModuleRegistry::standard().get("A").unwrap();
    let inputs: Vec<String> = (0..6).map(|i| format!("scan{i}.test")).collect();

    let report = run_real_scan(
        &conf,
        &resolver,
        module,
        addr_map,
        inputs.into_iter(),
        |_| {},
    );
    assert_eq!(report.lookups, 6);
    assert_eq!(report.successes, 6);
    assert_eq!(report.driver.peak_in_flight, 1, "window of 1 = no overlap");
}
