//! Cross-crate determinism and trace-fidelity tests.

use std::sync::Arc;

use zdns::core::{collecting_sink, Resolver, ResolverConfig};
use zdns::netsim::{Engine, EngineConfig};
use zdns::wire::{Name, Question, RecordType};
use zdns::zones::{SynthConfig, SyntheticUniverse, Universe};

fn run_once(seed: u64) -> (u64, u64, u64) {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));
    let mut engine = Engine::new(
        EngineConfig {
            threads: 32,
            seed,
            ..EngineConfig::default()
        },
        universe as Arc<dyn Universe>,
    );
    let mut i = 0;
    let report = engine.run(move || {
        if i >= 400 {
            return None;
        }
        i += 1;
        Some(resolver.machine(
            Question::new(format!("det{i}.com").parse().unwrap(), RecordType::A),
            None,
        ))
    });
    (report.successes, report.queries_sent, report.makespan)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    assert_eq!(run_once(42), run_once(42));
}

#[test]
fn different_seeds_differ() {
    // Same universe, different engine seed: latencies and loss draws move.
    assert_ne!(run_once(1).2, run_once(2).2);
}

#[test]
fn trace_json_has_appendix_c_fields() {
    let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
    let name: Name = (0..50_000)
        .map(|i| format!("tr{i}.com").parse::<Name>().unwrap())
        .find(|n| universe.domain_exists(n))
        .unwrap();
    let resolver = Resolver::new(ResolverConfig::iterative(universe.root_hints()));
    let mut engine = Engine::new(
        EngineConfig {
            threads: 1,
            wire_fidelity: true,
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );
    let (sink, results) = collecting_sink();
    let mut once = Some(());
    engine.run(move || {
        once.take()?;
        Some(resolver.machine(
            Question::new(name.clone(), RecordType::A),
            Some(sink.clone()),
        ))
    });
    let results = results.lock();
    let result = results.first().expect("one result");
    let json = result.to_json();
    // Appendix C top level: name, class, status, data, trace.
    for key in ["name", "class", "status", "data", "trace"] {
        assert!(json.get(key).is_some(), "missing {key}");
    }
    let step = &json["trace"][0];
    for key in [
        "cached",
        "class",
        "depth",
        "layer",
        "name",
        "name_server",
        "try",
        "type",
    ] {
        assert!(step.get(key).is_some(), "trace step missing {key}");
    }
    // Step results mirror the per-hop response shape.
    assert!(step["results"]["flags"]["response"]
        .as_bool()
        .unwrap_or(false));
}
