//! Workspace-level integration tests: the full pipeline from framework
//! configuration through modules, resolver, simulator, and JSON output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns::framework::{run_sim_scan, Conf, OutputGroup};
use zdns::modules::{ModuleOutput, ModuleRegistry};
use zdns::workloads::CtCorpus;
use zdns::zones::{SynthConfig, SyntheticUniverse, Universe};

fn universe() -> Arc<SyntheticUniverse> {
    Arc::new(SyntheticUniverse::new(SynthConfig::default()))
}

#[test]
fn cli_style_scan_produces_parseable_jsonl() {
    let conf = Conf::parse(["A", "--iterative", "--threads", "64"]).unwrap();
    let registry = ModuleRegistry::standard();
    let module = registry.get(&conf.module).unwrap();
    let corpus = CtCorpus::new(0x5DA5_2D45, 486, 1211);
    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_lines = Arc::clone(&lines);
    let group = conf.output;
    let report = run_sim_scan(
        &conf,
        universe() as Arc<dyn Universe>,
        module,
        corpus.base_domains(300),
        move |o| {
            sink_lines
                .lock()
                .push(zdns::framework::output::to_line(&o, group))
        },
    );
    assert_eq!(report.jobs, 300);
    let lines = lines.lock();
    assert_eq!(lines.len(), 300);
    for line in lines.iter() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert!(v["name"].is_string());
        assert!(v["status"].is_string());
    }
}

#[test]
fn every_module_in_registry_produces_output() {
    // A smoke test across the whole registry: every module must emit
    // exactly one output line per input and never panic, whatever the
    // input shape.
    let registry = ModuleRegistry::standard();
    let u = universe();
    let conf = Conf::parse(["A", "--iterative", "--threads", "8"]).unwrap();
    for name in registry.names() {
        let module = registry.get(name).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let inputs: Vec<String> = vec![
            "probe-domain0.com".into(),
            "192.0.2.1".into(),
            "not a name!!".into(),
        ];
        run_sim_scan(
            &conf,
            Arc::clone(&u) as Arc<dyn Universe>,
            module,
            inputs.into_iter(),
            move |_o: ModuleOutput| {
                c2.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 3, "module {name}");
    }
}

#[test]
fn output_groups_are_consistent_across_pipeline() {
    let conf = Conf::parse(["A", "--iterative", "--threads", "8", "--trace"]).unwrap();
    assert_eq!(conf.output, OutputGroup::Trace);
    assert!(conf.resolver.trace);
}
