//! # zdns (Rust reproduction)
//!
//! An open-source reproduction of *ZDNS: A Fast DNS Toolkit for Internet
//! Measurement* (IMC '22) as a Rust workspace. This meta-crate re-exports
//! the public API of every component:
//!
//! * [`wire`] — DNS wire-format codec (66 record types, compression, EDNS).
//! * [`zones`] — authoritative zone semantics + the procedural simulated
//!   Internet the evaluation scans.
//! * [`netsim`] — the deterministic discrete-event network simulator and
//!   real loopback wire servers.
//! * [`core`] — the ZDNS resolver library: selective caching, iterative
//!   resolution with exposed lookup chains, external mode, transports.
//! * [`modules`] — composable lookup modules (raw types, alookup, mxlookup,
//!   caalookup, SPF/DMARC, `--all-nameservers`).
//! * [`framework`] — scan orchestration, configuration, JSON-lines output.
//! * [`baselines`] — behavioural models of dig, Unbound, and MassDNS.
//! * [`workloads`] — the CT-log-like corpus (Table 3) and IPv4 workloads.
//!
//! See `examples/quickstart.rs` for a five-minute tour, DESIGN.md for the
//! architecture, and EXPERIMENTS.md for paper-vs-measured results.

pub use zdns_baselines as baselines;
pub use zdns_core as core;
pub use zdns_framework as framework;
pub use zdns_modules as modules;
pub use zdns_netsim as netsim;
pub use zdns_wire as wire;
pub use zdns_workloads as workloads;
pub use zdns_zones as zones;
